//! Health snapshots: per-context service statistics aggregated into the
//! payload a `/health` (JSON) or `/metrics` (Prometheus) endpoint would
//! serve.
//!
//! Each observability context (in practice: each `dmc_core::Session`)
//! contributes one [`ContextHealth`] — compiles served, stage-cache
//! reuse, charged work-unit totals, a request-latency
//! [`Log2Hist`], and the recorder's own overhead counters
//! ([`ObsOverhead`], exported as `dmc_obs_*` meta-metrics). A
//! [`HealthSnapshot`] merges any number of them; the merged `total` row
//! uses [`Log2Hist::merge`], so its quantiles are exactly those of the
//! pooled observations.

use crate::json;
use crate::metrics::{Log2Hist, Registry};
use crate::trace::ObsOverhead;

/// Service statistics of one observability context.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContextHealth {
    /// Context label (e.g. a session name); becomes the `ctx` metric
    /// label.
    pub label: String,
    /// Compile requests served.
    pub compiles: u64,
    /// Session stage-cache hits across those requests.
    pub stage_hits: u64,
    /// Session stage-cache misses across those requests.
    pub stage_misses: u64,
    /// Total charged polyhedral work units.
    pub work_units: u64,
    /// Request wall-latency distribution, in microseconds.
    pub latency_us: Log2Hist,
    /// The recorder's self-overhead counters for this context.
    pub obs: ObsOverhead,
}

impl ContextHealth {
    /// Stage-cache reuse rate (`hits / (hits + misses)`), `0.0` before
    /// any stage ran.
    pub fn stage_reuse_rate(&self) -> f64 {
        let total = self.stage_hits + self.stage_misses;
        if total == 0 {
            0.0
        } else {
            self.stage_hits as f64 / total as f64
        }
    }

    fn merge_into(&self, acc: &mut ContextHealth) {
        acc.compiles += self.compiles;
        acc.stage_hits += self.stage_hits;
        acc.stage_misses += self.stage_misses;
        acc.work_units += self.work_units;
        acc.latency_us.merge(&self.latency_us);
        acc.obs = acc.obs.merged(&self.obs);
    }

    fn to_json(&self) -> String {
        let q = |v: Option<u64>| v.map_or("null".to_owned(), |v| v.to_string());
        format!(
            concat!(
                "{{\"ctx\":{},\"compiles\":{},\"stage_hits\":{},\"stage_misses\":{},",
                "\"stage_reuse_rate\":{:?},\"work_units\":{},",
                "\"latency_us\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}},",
                "\"obs\":{{\"records\":{},\"bytes\":{},\"trace_ns\":{},\"dropped\":{}}}}}"
            ),
            json::quote(&self.label),
            self.compiles,
            self.stage_hits,
            self.stage_misses,
            self.stage_reuse_rate(),
            self.work_units,
            self.latency_us.count(),
            self.latency_us.sum(),
            q(self.latency_us.p50()),
            q(self.latency_us.p95()),
            q(self.latency_us.p99()),
            self.obs.records,
            self.obs.bytes,
            self.obs.trace_ns,
            self.obs.dropped,
        )
    }
}

/// A point-in-time aggregation of [`ContextHealth`] rows, renderable as
/// Prometheus text (passes [`validate_prometheus`](crate::metrics::validate_prometheus))
/// or JSON (parses with [`json::parse`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// One row per context, in insertion order.
    pub contexts: Vec<ContextHealth>,
}

impl HealthSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one context's statistics.
    pub fn add(&mut self, health: ContextHealth) {
        self.contexts.push(health);
    }

    /// The merged row over every context (label `"total"`); histogram
    /// merge via [`Log2Hist::merge`], so quantiles are those of the
    /// pooled observations.
    pub fn totals(&self) -> ContextHealth {
        let mut acc = ContextHealth {
            label: "total".to_owned(),
            ..ContextHealth::default()
        };
        for ctx in &self.contexts {
            ctx.merge_into(&mut acc);
        }
        acc
    }

    /// Renders the snapshot as a JSON document:
    /// `{"contexts": [...], "total": {...}}`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.contexts.iter().map(ContextHealth::to_json).collect();
        format!(
            "{{\"contexts\":[{}],\"total\":{}}}",
            rows.join(","),
            self.totals().to_json()
        )
    }

    /// Writes the snapshot's metric families into a [`Registry`], one
    /// sample per context keyed by the `ctx` label, plus the `dmc_obs_*`
    /// self-overhead meta-metrics.
    pub fn export(&self, reg: &mut Registry) {
        for ctx in self.contexts.iter() {
            let labels = [("ctx", ctx.label.as_str())];
            reg.set_counter(
                "dmc_health_compiles_total",
                "Compile requests served",
                &labels,
                ctx.compiles,
            );
            reg.set_counter(
                "dmc_health_stage_hits_total",
                "Session stage-cache hits",
                &labels,
                ctx.stage_hits,
            );
            reg.set_counter(
                "dmc_health_stage_misses_total",
                "Session stage-cache misses",
                &labels,
                ctx.stage_misses,
            );
            reg.set_gauge(
                "dmc_health_stage_reuse_ratio",
                "Stage-cache hit fraction",
                &labels,
                ctx.stage_reuse_rate(),
            );
            reg.set_counter(
                "dmc_health_work_units_total",
                "Charged polyhedral work units",
                &labels,
                ctx.work_units,
            );
            reg.set_histogram(
                "dmc_health_compile_latency_us",
                "Request wall latency in microseconds",
                &labels,
                &ctx.latency_us,
            );
            reg.set_counter(
                "dmc_obs_records_total",
                "Trace records kept by the recorder",
                &labels,
                ctx.obs.records,
            );
            reg.set_counter(
                "dmc_obs_record_bytes_total",
                "Approximate bytes of kept trace records",
                &labels,
                ctx.obs.bytes,
            );
            reg.set_counter(
                "dmc_obs_trace_ns_total",
                "Nanoseconds spent inside the recorder's emit path",
                &labels,
                ctx.obs.trace_ns,
            );
            reg.set_counter(
                "dmc_obs_records_dropped_total",
                "Trace records dropped by the record cap",
                &labels,
                ctx.obs.dropped,
            );
        }
    }

    /// Renders the snapshot as a Prometheus text document.
    pub fn render_prometheus(&self) -> String {
        let mut reg = Registry::new();
        self.export(&mut reg);
        reg.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::validate_prometheus;

    fn ctx(label: &str, compiles: u64, lat: &[u64]) -> ContextHealth {
        let mut latency_us = Log2Hist::new();
        for &v in lat {
            latency_us.observe(v);
        }
        ContextHealth {
            label: label.to_owned(),
            compiles,
            stage_hits: 2,
            stage_misses: 6,
            work_units: 100 * compiles,
            latency_us,
            obs: ObsOverhead {
                records: 10,
                bytes: 320,
                trace_ns: 5000,
                dropped: 1,
            },
        }
    }

    #[test]
    fn totals_pool_histograms_exactly() {
        let mut snap = HealthSnapshot::new();
        snap.add(ctx("a", 2, &[10, 20]));
        snap.add(ctx("b", 3, &[1000, 2000, 4000]));
        let total = snap.totals();
        assert_eq!(total.compiles, 5);
        assert_eq!(total.work_units, 500);
        assert_eq!(total.latency_us.count(), 5);
        let mut pooled = Log2Hist::new();
        for v in [10u64, 20, 1000, 2000, 4000] {
            pooled.observe(v);
        }
        assert_eq!(total.latency_us, pooled);
        assert_eq!(total.obs.records, 20);
    }

    #[test]
    fn prometheus_render_passes_validator() {
        let mut snap = HealthSnapshot::new();
        snap.add(ctx("a", 2, &[10, 20]));
        snap.add(ctx("b", 1, &[30]));
        let doc = snap.render_prometheus();
        let check = validate_prometheus(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(check.histograms, 2);
        assert!(
            doc.contains("dmc_health_compiles_total{ctx=\"a\"} 2"),
            "{doc}"
        );
        assert!(
            doc.contains("dmc_obs_records_dropped_total{ctx=\"b\"} 1"),
            "{doc}"
        );
    }

    #[test]
    fn json_render_parses_and_carries_quantiles() {
        let mut snap = HealthSnapshot::new();
        snap.add(ctx("a", 2, &[10, 20]));
        let doc = snap.to_json();
        let v = json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        let contexts = v.get("contexts").and_then(|c| c.as_arr()).unwrap();
        assert_eq!(contexts.len(), 1);
        assert_eq!(contexts[0].get("ctx").and_then(|c| c.as_str()), Some("a"));
        let total = v.get("total").unwrap();
        assert_eq!(total.get("compiles").and_then(|c| c.as_num()), Some(2.0));
        let lat = total.get("latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(|c| c.as_num()), Some(2.0));
        assert!(lat.get("p95").and_then(|c| c.as_num()).is_some());
        // Empty snapshot: quantiles are null, still valid JSON.
        let empty = HealthSnapshot::new().to_json();
        let v = json::parse(&empty).unwrap();
        assert!(v
            .get("total")
            .unwrap()
            .get("latency_us")
            .unwrap()
            .get("p50")
            .is_some());
    }
}
