//! The append-only compile journal: one deterministic JSONL record per
//! served compile.
//!
//! A journal is the durable, replayable log of what a session did: for
//! every request it appends one line holding the input fingerprints
//! (program, decomposition, grid, options), the session's stage-cache
//! behaviour (hits/misses), the exact charged [`work
//! units`](JournalRecord::work_units), the schedule's message statistics,
//! a fingerprint of the schedule itself, and the wall time. Every field
//! except the wall time is **deterministic**: re-running the journal's
//! requests, in order, through a fresh session reproduces the
//! deterministic fields byte-for-byte — which is exactly what the
//! `dmc-journal --replay` mode asserts. Wall times are recorded for
//! humans and excluded from [`JournalRecord::deterministic_eq`] and
//! journal diffs.
//!
//! The format is one JSON object per line with a fixed key order, so a
//! journal can be compared with `diff(1)`, tailed, and appended to
//! without rewriting. Parsing is strict: an unreadable line is an error
//! naming the line number, not a silent skip.

use crate::json::{self, Json};

/// One served compile, as one journal line. All fields except
/// [`wall_us`](Self::wall_us) are deterministic for a given request
/// sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalRecord {
    /// Position in the journal (0-based, dense).
    pub seq: u64,
    /// Workload label the serving caller chose (e.g. `"lu"`).
    pub workload: String,
    /// Processors of the target grid.
    pub nproc: u64,
    /// Symbolic parameter values the schedule was built for.
    pub params: Vec<i64>,
    /// Fingerprint of the source program (32 hex digits).
    pub program_fp: String,
    /// Fingerprint of the data decomposition.
    pub decomp_fp: String,
    /// Fingerprint of the processor grid.
    pub grid_fp: String,
    /// Fingerprint of the compile options.
    pub options_fp: String,
    /// Session stage-cache hits this request added.
    pub stage_hits: u64,
    /// Session stage-cache misses this request added.
    pub stage_misses: u64,
    /// Charged polyhedral work units this request cost (deterministic
    /// across cache states and worker counts).
    pub work_units: u64,
    /// Distinct messages in the built schedule.
    pub messages: u64,
    /// Message transmissions (receiver fan-out counted).
    pub transmissions: u64,
    /// Words moved across all transmissions.
    pub words: u64,
    /// Fingerprint of the complete schedule (32 hex digits); equal
    /// fingerprints mean byte-identical schedules.
    pub schedule_fp: String,
    /// Wall-clock microseconds serving the request took. Diagnostic
    /// only; never part of deterministic comparisons.
    pub wall_us: u64,
}

impl JournalRecord {
    /// Renders the record as one JSON line (no trailing newline), keys
    /// in fixed order.
    pub fn to_jsonl(&self) -> String {
        let params: Vec<String> = self.params.iter().map(|p| p.to_string()).collect();
        format!(
            concat!(
                "{{\"seq\":{},\"workload\":{},\"nproc\":{},\"params\":[{}],",
                "\"program_fp\":{},\"decomp_fp\":{},\"grid_fp\":{},\"options_fp\":{},",
                "\"stage_hits\":{},\"stage_misses\":{},\"work_units\":{},",
                "\"messages\":{},\"transmissions\":{},\"words\":{},",
                "\"schedule_fp\":{},\"wall_us\":{}}}"
            ),
            self.seq,
            json::quote(&self.workload),
            self.nproc,
            params.join(","),
            json::quote(&self.program_fp),
            json::quote(&self.decomp_fp),
            json::quote(&self.grid_fp),
            json::quote(&self.options_fp),
            self.stage_hits,
            self.stage_misses,
            self.work_units,
            self.messages,
            self.transmissions,
            self.words,
            json::quote(&self.schedule_fp),
            self.wall_us,
        )
    }

    /// Parses one journal line.
    pub fn from_json_line(line: &str) -> Result<JournalRecord, String> {
        let v = json::parse(line)?;
        let num = |key: &str| -> Result<u64, String> {
            let n = v
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("missing or non-numeric field `{key}`"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("field `{key}` is not a non-negative integer: {n}"));
            }
            Ok(n as u64)
        };
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))?
                .to_owned())
        };
        let params = v
            .get("params")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing or non-array field `params`".to_owned())?
            .iter()
            .map(|p| {
                let n = p
                    .as_num()
                    .ok_or_else(|| "non-numeric entry in `params`".to_owned())?;
                if n.fract() != 0.0 {
                    return Err(format!("non-integer entry in `params`: {n}"));
                }
                Ok(n as i64)
            })
            .collect::<Result<Vec<i64>, String>>()?;
        let fp = |key: &str| -> Result<String, String> {
            let s = text(key)?;
            if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!(
                    "field `{key}` is not a 32-hex-digit fingerprint: {s:?}"
                ));
            }
            Ok(s)
        };
        Ok(JournalRecord {
            seq: num("seq")?,
            workload: text("workload")?,
            nproc: num("nproc")?,
            params,
            program_fp: fp("program_fp")?,
            decomp_fp: fp("decomp_fp")?,
            grid_fp: fp("grid_fp")?,
            options_fp: fp("options_fp")?,
            stage_hits: num("stage_hits")?,
            stage_misses: num("stage_misses")?,
            work_units: num("work_units")?,
            messages: num("messages")?,
            transmissions: num("transmissions")?,
            words: num("words")?,
            schedule_fp: fp("schedule_fp")?,
            wall_us: num("wall_us")?,
        })
    }

    /// Whether two records agree on every deterministic field (all but
    /// `wall_us`).
    pub fn deterministic_eq(&self, other: &JournalRecord) -> bool {
        self.field_diffs(other).is_empty()
    }

    /// The deterministic fields on which two records disagree, as
    /// `field: left != right` lines. Empty means deterministically
    /// equal.
    pub fn field_diffs(&self, other: &JournalRecord) -> Vec<String> {
        let mut out = Vec::new();
        let mut chk = |name: &str, a: &dyn std::fmt::Display, b: &dyn std::fmt::Display| {
            let (a, b) = (a.to_string(), b.to_string());
            if a != b {
                out.push(format!("{name}: {a} != {b}"));
            }
        };
        chk("seq", &self.seq, &other.seq);
        chk("workload", &self.workload, &other.workload);
        chk("nproc", &self.nproc, &other.nproc);
        let params = |p: &[i64]| {
            p.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        chk("params", &params(&self.params), &params(&other.params));
        chk("program_fp", &self.program_fp, &other.program_fp);
        chk("decomp_fp", &self.decomp_fp, &other.decomp_fp);
        chk("grid_fp", &self.grid_fp, &other.grid_fp);
        chk("options_fp", &self.options_fp, &other.options_fp);
        chk("stage_hits", &self.stage_hits, &other.stage_hits);
        chk("stage_misses", &self.stage_misses, &other.stage_misses);
        chk("work_units", &self.work_units, &other.work_units);
        chk("messages", &self.messages, &other.messages);
        chk("transmissions", &self.transmissions, &other.transmissions);
        chk("words", &self.words, &other.words);
        chk("schedule_fp", &self.schedule_fp, &other.schedule_fp);
        out
    }
}

/// Renders a journal as JSONL text (one record per line, trailing
/// newline).
pub fn render_journal(records: &[JournalRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_jsonl());
        out.push('\n');
    }
    out
}

/// Parses JSONL journal text. Strict: any unreadable line fails with a
/// one-line error naming the 1-based line number, and `seq` must be
/// dense from 0 (an append-only journal never has holes).
pub fn parse_journal(text: &str) -> Result<Vec<JournalRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            return Err(format!("journal line {}: blank line", i + 1));
        }
        let rec = JournalRecord::from_json_line(line)
            .map_err(|e| format!("journal line {}: {e}", i + 1))?;
        if rec.seq != out.len() as u64 {
            return Err(format!(
                "journal line {}: seq {} out of order (expected {})",
                i + 1,
                rec.seq,
                out.len()
            ));
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> JournalRecord {
        JournalRecord {
            seq,
            workload: "lu".to_owned(),
            nproc: 8,
            params: vec![48],
            program_fp: "0123456789abcdef0123456789abcdef".to_owned(),
            decomp_fp: "00000000000000000000000000000001".to_owned(),
            grid_fp: "00000000000000000000000000000002".to_owned(),
            options_fp: "00000000000000000000000000000003".to_owned(),
            stage_hits: 1,
            stage_misses: 4,
            work_units: 1234,
            messages: 3,
            transmissions: 24,
            words: 768,
            schedule_fp: "fedcba9876543210fedcba9876543210".to_owned(),
            wall_us: 999,
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let rec = sample(0);
        let line = rec.to_jsonl();
        assert!(!line.contains('\n'));
        let back = JournalRecord::from_json_line(&line).unwrap();
        assert_eq!(back, rec);
        let text = render_journal(&[sample(0), sample(1)]);
        let parsed = parse_journal(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].seq, 1);
    }

    #[test]
    fn deterministic_eq_ignores_wall_time_only() {
        let a = sample(0);
        let mut b = sample(0);
        b.wall_us = 1;
        assert!(a.deterministic_eq(&b));
        b.work_units += 1;
        let diffs = a.field_diffs(&b);
        assert_eq!(diffs, vec!["work_units: 1234 != 1235"]);
    }

    #[test]
    fn parse_rejects_corruption_with_line_numbers() {
        let good = render_journal(&[sample(0), sample(1)]);
        // Truncated JSON on line 2.
        let mut lines: Vec<&str> = good.lines().collect();
        let cut = &lines[1][..lines[1].len() / 2];
        lines[1] = cut;
        let err = parse_journal(&lines.join("\n")).unwrap_err();
        assert!(err.starts_with("journal line 2:"), "{err}");
        // Bad fingerprint.
        let bad_fp = good.replace("fedcba9876543210fedcba9876543210", "nope");
        let err = parse_journal(&bad_fp).unwrap_err();
        assert!(err.contains("schedule_fp"), "{err}");
        // Seq hole.
        let hole = render_journal(&[sample(0), sample(2)]);
        let err = parse_journal(&hole).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }
}
