//! A minimal JSON reader/writer without external dependencies — enough
//! for the Chrome-trace validator to re-parse its own output, and public
//! so downstream tools (the bench regression gate) can read the snapshot
//! files this workspace writes.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Quotes and escapes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a description (with byte offset) of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(b.len());
                out.push_str(std::str::from_utf8(&b[*pos..end]).map_err(|_| "bad utf-8")?);
                *pos = end;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
