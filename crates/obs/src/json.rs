//! A minimal JSON reader/writer without external dependencies — enough
//! for the Chrome-trace validator to re-parse its own output, and public
//! so downstream tools (the bench regression gate) can read the snapshot
//! files this workspace writes.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Quotes and escapes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The 1-based `line N column M` rendering of a byte offset, counting
/// `\n` line breaks and columns in bytes from the last break. Every
/// parse error names its position through this helper, so a failure in a
/// multi-line document (a snapshot file, a JSONL record) points at the
/// offending line directly.
fn pos_at(b: &[u8], pos: usize) -> String {
    let pos = pos.min(b.len());
    let line = 1 + b[..pos].iter().filter(|&&c| c == b'\n').count();
    let col = 1 + pos
        - b[..pos]
            .iter()
            .rposition(|&c| c == b'\n')
            .map_or(0, |i| i + 1);
    format!("line {line} column {col}")
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// Object fields keep insertion order; on duplicate keys every field is
/// retained (visible through [`Json::as_obj`]) and [`Json::get`] returns
/// the **first** occurrence.
///
/// # Errors
///
/// Returns a description of the first syntax error, positioned as
/// 1-based `line N column M`.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at {}", pos_at(bytes, pos)));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at {}", c as char, pos_at(b, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at {}", pos_at(b, *pos)))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at {}", pos_at(b, start)))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at {}", pos_at(b, *pos)))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at {}", pos_at(b, *pos))),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(b.len());
                out.push_str(std::str::from_utf8(&b[*pos..end]).map_err(|_| "bad utf-8")?);
                *pos = end;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at {}", pos_at(b, *pos))),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at {}", pos_at(b, *pos))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    /// Every escape the writer emits parses back, plus the ones it never
    /// writes (`\/`, `\b`, `\f`, `\u` including lone surrogates), and the
    /// quote → parse round trip holds for control characters and
    /// multi-byte UTF-8.
    #[test]
    fn escape_sequences() {
        let v = parse(r#""a\"b\\c\/d\ne\rf\tg\bh\fiAjé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\ne\rf\tg\u{8}h\u{c}iAj\u{e9}"));
        // A lone surrogate cannot be a char; it parses to U+FFFD rather
        // than failing (our writer never emits surrogates).
        assert_eq!(parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
        // quote() round-trips everything it escapes, including raw
        // control characters and multi-byte UTF-8.
        for s in ["\u{1}\u{1f}", "π ≠ \u{10348}", "tab\there\n\"q\"\\"] {
            assert_eq!(parse(&quote(s)).unwrap().as_str(), Some(s), "{s:?}");
        }
        // Truncated and malformed escapes are errors, not silent data.
        assert!(parse(r#""\u00""#).is_err());
        assert!(parse(r#""\x""#).is_err());
        assert!(parse("\"unterminated").is_err());
    }

    /// Deep nesting parses without recursion trouble at the depths our
    /// documents reach, and unbalanced variants fail.
    #[test]
    fn deeply_nested_arrays() {
        let depth = 200;
        let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let mut v = parse(&doc).unwrap();
        for _ in 0..depth {
            v = v.as_arr().expect("array")[0].clone();
        }
        assert_eq!(v, Json::Num(1.0));
        // One bracket short / one too many both fail.
        assert!(parse(&doc[..doc.len() - 1]).is_err());
        assert!(parse(&format!("{doc}]")).is_err());
    }

    /// Duplicate keys: all fields are retained in insertion order, and
    /// `get` resolves to the first occurrence.
    #[test]
    fn duplicate_keys_keep_first_for_get() {
        let v = parse(r#"{"k": 1, "other": 2, "k": 3}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_num), Some(1.0));
        let fields = v.as_obj().unwrap();
        assert_eq!(fields.len(), 3, "duplicates are not silently dropped");
        assert_eq!(fields[0], ("k".to_owned(), Json::Num(1.0)));
        assert_eq!(fields[2], ("k".to_owned(), Json::Num(3.0)));
    }

    /// Error positions are 1-based line/column pairs that point at the
    /// offending byte of multi-line documents.
    #[test]
    fn errors_carry_line_and_column() {
        // Line 3, column 8: the `}` where a value was expected.
        let err = parse("{\n  \"a\": 1,\n  \"b\": }\n").unwrap_err();
        assert!(err.contains("line 3 column 8"), "{err}");
        // Same document on one line: column moves, line is 1.
        let err = parse("{\"a\": 1, \"b\": }").unwrap_err();
        assert!(err.contains("line 1 column 15"), "{err}");
        // Trailing content after the document names the line it starts on.
        let err = parse("{}\n\ntrailing").unwrap_err();
        assert!(err.contains("trailing content at line 3 column 1"), "{err}");
        // A bad literal mid-array on a later line.
        let err = parse("[\n  true,\n  nul\n]").unwrap_err();
        assert!(err.contains("line 3 column 3"), "{err}");
        // Missing comma between fields.
        let err = parse("{\"a\": 1\n \"b\": 2}").unwrap_err();
        assert!(err.contains("line 2 column 2"), "{err}");
    }
}
