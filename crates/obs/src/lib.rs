//! # dmc-obs
//!
//! Zero-dependency structured tracing for the dmc compiler pipeline:
//! span enter/exit with monotonic timestamps, typed instant events with
//! key/value fields, per-thread record buffers merged deterministically,
//! and a process-wide on/off switch so the overhead is a single relaxed
//! atomic load when tracing is disabled.
//!
//! ## Lanes: determinism under the parallel fan-out
//!
//! Records are not ordered by wall-clock time — that would make a trace
//! taken with `threads: 4` differ from one taken with `threads: 1`.
//! Instead every record belongs to a **lane**, a logical ordering key
//! (e.g. `main`, or `read/⟨stmt⟩/⟨read⟩` for one (statement, read)
//! analysis job of the pipeline fan-out). Within a lane, records keep the
//! order in which the owning code emitted them; lanes are merged sorted
//! by key. Because each per-read job is sequential regardless of which
//! worker thread runs it, the merged trace is identical for every worker
//! count — only the timestamps move.
//!
//! Records carry a `det` flag: structural records (spans, provenance
//! events) are deterministic and participate in
//! [`Trace::deterministic_view`]; diagnostic records whose *presence*
//! depends on scheduling or cache state (e.g. a feasibility-budget
//! exhaustion that a warm memo cache would have skipped) are emitted with
//! `det = false` and excluded from cross-configuration comparisons while
//! still appearing in the exported Chrome trace.
//!
//! ## Sinks
//!
//! * [`chrome_trace`] — a Chrome `trace_events` JSON document loadable in
//!   `chrome://tracing` or Perfetto; one display thread per lane.
//!   [`validate_chrome`] re-parses a document and checks it is well-formed
//!   JSON with balanced begin/end pairs and monotonic timestamps.
//! * [`explain_report`] — a human-readable provenance report attributing
//!   every surviving message to the read that created it and every
//!   eliminated communication set to the §6 pass that removed it.

#![warn(missing_docs)]

mod chrome;
mod explain;
mod json;
mod trace;

pub use chrome::{chrome_trace, validate_chrome, TraceCheck};
pub use explain::explain_report;
pub use trace::{
    enabled, event, event_f, event_nondet, field, finish_capture, lane, main_lane, read_lane,
    span, span_f, start_capture, LaneGuard, LaneKey, LaneRecords, Phase, Record, SpanGuard,
    Trace, Value,
};
