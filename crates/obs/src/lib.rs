//! # dmc-obs
//!
//! Zero-dependency structured tracing for the dmc compiler pipeline:
//! span enter/exit with monotonic timestamps, typed instant events with
//! key/value fields, and per-thread record buffers merged
//! deterministically. When no capture is active anywhere the overhead is
//! a single relaxed atomic load.
//!
//! ## Contexts
//!
//! Everything the recorder owns — capture store, overhead counters,
//! metrics registry — lives in a scoped [`ObsContext`]. The free
//! functions [`start_capture`]/[`finish_capture`] operate on a process
//! default context, preserving the classic global API byte-for-byte;
//! [`ObsContext::install`] makes a context current for the calling
//! thread, and `dmc_core::Session` propagates the installing thread's
//! context to every worker it spawns, so concurrent sessions trace in
//! isolation. Each capture's self-cost is accounted in [`ObsOverhead`]
//! (kept records, approximate bytes, emit-path nanoseconds, records
//! dropped by the [`push_record_cap`] cap).
//!
//! ## Lanes: determinism under the parallel fan-out
//!
//! Records are not ordered by wall-clock time — that would make a trace
//! taken with `threads: 4` differ from one taken with `threads: 1`.
//! Instead every record belongs to a **lane**, a logical ordering key
//! (e.g. `main`, or `read/⟨stmt⟩/⟨read⟩` for one (statement, read)
//! analysis job of the pipeline fan-out). Within a lane, records keep the
//! order in which the owning code emitted them; lanes are merged sorted
//! by key. Because each per-read job is sequential regardless of which
//! worker thread runs it, the merged trace is identical for every worker
//! count — only the timestamps move.
//!
//! Records carry a `det` flag: structural records (spans, provenance
//! events) are deterministic and participate in
//! [`Trace::deterministic_view`]; diagnostic records whose *presence*
//! depends on scheduling or cache state (e.g. a feasibility-budget
//! exhaustion that a warm memo cache would have skipped) are emitted with
//! `det = false` and excluded from cross-configuration comparisons while
//! still appearing in the exported Chrome trace.
//!
//! ## Sinks
//!
//! * [`chrome_trace`] — a Chrome `trace_events` JSON document loadable in
//!   `chrome://tracing` or Perfetto; one display thread per lane.
//!   [`validate_chrome`] re-parses a document and checks it is well-formed
//!   JSON with balanced begin/end pairs and monotonic timestamps.
//! * [`explain_report`] — a human-readable provenance report attributing
//!   every surviving message to the read that created it and every
//!   eliminated communication set to the §6 pass that removed it; when
//!   the trace carries machine telemetry (`sim.*` records), the report
//!   gains a machine view (per-processor breakdown, top links, hot
//!   messages joined with provenance).
//! * [`metrics`] — a metrics registry (counters / gauges / fixed
//!   log2-bucket histograms) with Prometheus text-format export and a
//!   strict self-validator, used by `dmc-machine` to publish simulator
//!   telemetry.
//! * [`journal`] — the append-only compile journal: one deterministic
//!   JSONL record per served compile, strictly parsed, replayable
//!   byte-for-byte through a fresh session (`dmc-journal`).
//! * [`health`] — per-context service statistics ([`ContextHealth`])
//!   aggregated into a [`HealthSnapshot`] rendered as Prometheus text or
//!   JSON, including the recorder's own `dmc_obs_*` meta-metrics.
//!
//! ## Machine lanes
//!
//! The simulator records per-processor timelines into **sim lanes**
//! ([`sim_lane`]), one per simulated processor. Their records carry `t0`
//! (and for intervals `t1`) fields holding *simulated* seconds; the Chrome
//! exporter renders them as complete events on a second process, so a
//! trace opens as the compiler's wall-clock lanes plus a
//! one-row-per-processor Gantt chart of the simulated machine.
//! [`suppress`] mutes recording on the current thread so internal dry-run
//! simulations (schedule legality probes) don't pollute the timeline.

#![warn(missing_docs)]

mod chrome;
mod explain;
pub mod health;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod svg;
mod trace;

pub use chrome::{chrome_trace, validate_chrome, TraceCheck};
pub use explain::{explain_report, explain_report_with_profile, message_pass_counts};
pub use health::{ContextHealth, HealthSnapshot};
pub use journal::JournalRecord;
pub use metrics::{validate_prometheus, Log2Hist, MetricKind, PromCheck, Registry};
pub use profile::{ProfileOp, WorkProfile};
pub use trace::{
    enabled, event, event_f, event_nondet, field, finish_capture, lane, main_lane, push_record_cap,
    read_lane, record_cap, sim_lane, span, span_f, start_capture, suppress, CtxGuard, LaneGuard,
    LaneKey, LaneRecords, ObsContext, ObsOverhead, Phase, Record, RecordCapGuard, SpanGuard,
    SuppressGuard, Trace, Value,
};
