//! A zero-dependency metrics registry with Prometheus text-format export.
//!
//! The registry holds three metric kinds — monotone integer **counters**,
//! floating-point **gauges**, and fixed-bucket log2 **histograms** — keyed
//! by metric name plus a sorted label set. [`Registry::render`] emits the
//! Prometheus text exposition format (`# HELP` / `# TYPE` headers,
//! cumulative `_bucket{le="..."}` series, `_sum` and `_count` samples),
//! and [`validate_prometheus`] is a strict self-validator that re-parses
//! a rendered document and checks it line by line: declared types, legal
//! names, no duplicate samples, no interleaved families, cumulative
//! non-decreasing buckets ending in `le="+Inf"`, and `_count` equal to the
//! `+Inf` bucket.
//!
//! Histograms use **fixed log2 buckets**: bucket `i` has the upper bound
//! `2^i` (`le="1"`, `le="2"`, `le="4"`, ... up to `le="2147483648"`), plus
//! an overflow bucket that only appears in the cumulative `+Inf` sample.
//! Counts are exact `u64` integers — no sampling, no decay — so two runs
//! of a deterministic simulation render byte-identical documents.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of finite log2 buckets in a [`Log2Hist`] (upper bounds
/// `2^0 .. 2^31`).
pub const LOG2_FINITE_BUCKETS: usize = 32;

/// A histogram over `u64` observations with fixed log2 bucket boundaries.
///
/// Bucket `i` counts observations `v` with `2^(i-1) < v <= 2^i` (bucket 0
/// counts `v <= 1`); observations above `2^31` land in a dedicated
/// overflow bucket that is only visible through the cumulative `+Inf`
/// sample. All counts and the sum are exact integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    /// Per-bucket (non-cumulative) counts; the last slot is the overflow
    /// bucket for observations above the largest finite bound.
    counts: [u64; LOG2_FINITE_BUCKETS + 1],
    sum: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            counts: [0; LOG2_FINITE_BUCKETS + 1],
            sum: 0,
        }
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index an observation falls into: the smallest `i` with
    /// `v <= 2^i`, or the overflow slot past the largest finite bound.
    pub fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // ceil(log2(v)) for v >= 2.
        let idx = 64 - (v - 1).leading_zeros() as usize;
        idx.min(LOG2_FINITE_BUCKETS)
    }

    /// The upper bound of finite bucket `i` (`2^i`).
    pub fn bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The upper bound of the bucket containing the `p`-quantile
    /// observation (rank `ceil(p·count)`, clamped to `[1, count]`), or
    /// `None` on an empty histogram. Exact with respect to the bucketing:
    /// the returned bound is the smallest recorded bucket bound with at
    /// least a `p` fraction of observations at or below it. Observations
    /// in the overflow slot report `u64::MAX`.
    pub fn quantile_bound(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(if i < LOG2_FINITE_BUCKETS {
                    Self::bound(i)
                } else {
                    u64::MAX
                });
            }
        }
        unreachable!("cumulative count reaches total")
    }

    /// Folds another histogram into this one: bucket-wise count sum and
    /// saturating sum-of-observations, so the merge is exactly the
    /// histogram of the pooled observations. Used to aggregate
    /// per-context latency histograms into a health snapshot.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Median bucket bound (see [`Log2Hist::quantile_bound`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile_bound(0.50)
    }

    /// 95th-percentile bucket bound (see [`Log2Hist::quantile_bound`]).
    pub fn p95(&self) -> Option<u64> {
        self.quantile_bound(0.95)
    }

    /// 99th-percentile bucket bound (see [`Log2Hist::quantile_bound`]).
    pub fn p99(&self) -> Option<u64> {
        self.quantile_bound(0.99)
    }
}

/// The kind of a metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone integer counter.
    Counter,
    /// Instantaneous floating-point value.
    Gauge,
    /// [`Log2Hist`] distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Sample {
    Counter(u64),
    Gauge(f64),
    Hist(Box<Log2Hist>),
}

#[derive(Clone, Debug, PartialEq)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Samples keyed by their sorted label set.
    samples: BTreeMap<Vec<(String, String)>, Sample>,
}

/// A collection of metric families, rendered deterministically (families
/// sorted by name, samples by label set).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    families: BTreeMap<String, Family>,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Renders an `f64` in a form Prometheus parsers (and the validator's
/// `f64::from_str`) accept; `{:?}` gives the shortest round-trip form.
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v:?}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of metric families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether the registry holds no families.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Family {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let fam = self
            .families
            .entry(name.to_owned())
            .or_insert_with(|| Family {
                help: help.to_owned(),
                kind,
                samples: BTreeMap::new(),
            });
        assert!(
            fam.kind == kind,
            "metric {name:?} registered as {:?}, used as {kind:?}",
            fam.kind
        );
        fam
    }

    fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_label_name(k), "invalid label name {k:?}");
                ((*k).to_owned(), (*v).to_owned())
            })
            .collect();
        key.sort();
        key
    }

    /// Sets a counter sample. Counters are monotone by contract; the
    /// registry stores whatever final value the caller computed.
    pub fn set_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        let key = Self::label_key(labels);
        self.family(name, help, MetricKind::Counter)
            .samples
            .insert(key, Sample::Counter(v));
    }

    /// Adds to a counter sample (creating it at zero).
    pub fn add_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        let key = Self::label_key(labels);
        let fam = self.family(name, help, MetricKind::Counter);
        match fam.samples.entry(key).or_insert(Sample::Counter(0)) {
            Sample::Counter(c) => *c += v,
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Sets a gauge sample.
    pub fn set_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let key = Self::label_key(labels);
        self.family(name, help, MetricKind::Gauge)
            .samples
            .insert(key, Sample::Gauge(v));
    }

    /// Sets a histogram sample from a finished [`Log2Hist`].
    pub fn set_histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Log2Hist) {
        let key = Self::label_key(labels);
        self.family(name, help, MetricKind::Histogram)
            .samples
            .insert(key, Sample::Hist(Box::new(h.clone())));
    }

    /// Publishes the `dmc_build_info` gauge (Prometheus "info metric"
    /// convention: constant value 1, the data lives in the labels).
    pub fn set_build_info(&mut self, version: &str, profile: &str) {
        self.set_gauge(
            "dmc_build_info",
            "Build information (constant 1; version and profile in labels)",
            &[("version", version), ("profile", profile)],
            1.0,
        );
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Deterministic: families sorted by name, samples by label set.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(
                out,
                "# HELP {name} {}",
                fam.help.replace('\\', "\\\\").replace('\n', "\\n")
            );
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for (labels, sample) in &fam.samples {
                match sample {
                    Sample::Counter(v) => {
                        let _ = writeln!(out, "{name}{} {v}", render_labels(labels));
                    }
                    Sample::Gauge(v) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels), render_f64(*v));
                    }
                    Sample::Hist(h) => {
                        // Cumulative buckets up to the last non-empty
                        // finite bound (always at least le="1"), then
                        // +Inf carrying the overflow too.
                        let last = h
                            .counts()
                            .iter()
                            .take(LOG2_FINITE_BUCKETS)
                            .rposition(|&c| c > 0)
                            .unwrap_or(0);
                        let mut cum = 0u64;
                        for i in 0..=last {
                            cum += h.counts()[i];
                            let mut with_le = labels.to_vec();
                            with_le.push(("le".to_owned(), Log2Hist::bound(i).to_string()));
                            with_le.sort();
                            let _ = writeln!(out, "{name}_bucket{} {cum}", render_labels(&with_le));
                        }
                        let mut with_le = labels.to_vec();
                        with_le.push(("le".to_owned(), "+Inf".to_owned()));
                        with_le.sort();
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(&with_le),
                            h.count()
                        );
                        let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels), h.sum());
                        let _ =
                            writeln!(out, "{name}_count{} {}", render_labels(labels), h.count());
                    }
                }
            }
        }
        out
    }
}

/// Summary of a validated Prometheus text document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PromCheck {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines (each `_bucket`/`_sum`/`_count` line counts as one).
    pub samples: usize,
    /// Histogram series (one per label set of a histogram family).
    pub histograms: usize,
}

/// One histogram series being accumulated by the validator.
#[derive(Default)]
struct HistSeries {
    /// `(le, cumulative count)` in order of appearance.
    buckets: Vec<(f64, u64)>,
    count: Option<u64>,
    sum_seen: bool,
}

/// Splits `name{labels} value` into its three parts (labels optional).
fn split_sample_line(line: &str) -> Result<(&str, &str, &str), String> {
    if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| format!("unterminated label set: {line}"))?;
        if close < open {
            return Err(format!("malformed label set: {line}"));
        }
        let value = line[close + 1..].trim();
        Ok((&line[..open], &line[open + 1..close], value))
    } else {
        let mut it = line.splitn(2, char::is_whitespace);
        let name = it.next().unwrap_or("");
        let value = it.next().map(str::trim).unwrap_or("");
        Ok((name, "", value))
    }
}

/// Parses a label body `a="x",b="y"` into sorted `(name, value)` pairs,
/// undoing the exposition-format escapes.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let bytes = body.as_bytes();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let eq = body[pos..]
            .find('=')
            .map(|i| pos + i)
            .ok_or_else(|| format!("missing '=' in label set: {body}"))?;
        let name = body[pos..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err(format!("label value must be quoted: {body}"));
        }
        let mut val = String::new();
        let mut i = eq + 2;
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value: {body}")),
                Some(b'"') => break,
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => val.push('\\'),
                        Some(b'"') => val.push('"'),
                        Some(b'n') => val.push('\n'),
                        _ => return Err(format!("bad escape in label value: {body}")),
                    }
                    i += 2;
                }
                Some(_) => {
                    let rest = &body[i..];
                    let c = rest.chars().next().unwrap();
                    val.push(c);
                    i += c.len_utf8();
                }
            }
        }
        out.push((name.to_owned(), val));
        pos = i + 1;
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        } else if pos < bytes.len() {
            return Err(format!("expected ',' between labels: {body}"));
        }
    }
    out.sort();
    Ok(out)
}

fn parse_prom_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {s:?}")),
    }
}

fn finish_hist_family(
    name: &str,
    series: &BTreeMap<String, HistSeries>,
    check: &mut PromCheck,
) -> Result<(), String> {
    for (labels, s) in series {
        let show = if labels.is_empty() {
            "{}".to_owned()
        } else {
            format!("{{{labels}}}")
        };
        if s.buckets.is_empty() {
            return Err(format!("histogram {name}{show}: no buckets"));
        }
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = 0u64;
        for &(le, cum) in &s.buckets {
            if le <= last_le {
                return Err(format!(
                    "histogram {name}{show}: bucket bounds not increasing (le={le} after {last_le})"
                ));
            }
            if cum < last_cum {
                return Err(format!(
                    "histogram {name}{show}: cumulative count decreases at le={le} ({cum} < {last_cum})"
                ));
            }
            last_le = le;
            last_cum = cum;
        }
        let (final_le, final_cum) = *s.buckets.last().unwrap();
        if final_le != f64::INFINITY {
            return Err(format!(
                "histogram {name}{show}: last bucket must be le=\"+Inf\""
            ));
        }
        match s.count {
            None => return Err(format!("histogram {name}{show}: missing _count")),
            Some(c) if c != final_cum => {
                return Err(format!(
                    "histogram {name}{show}: _count {c} != +Inf bucket {final_cum}"
                ))
            }
            Some(_) => {}
        }
        if !s.sum_seen {
            return Err(format!("histogram {name}{show}: missing _sum"));
        }
        check.histograms += 1;
    }
    Ok(())
}

/// Strictly validates a Prometheus text-format document (as produced by
/// [`Registry::render`]): every sample's family is declared with `# TYPE`
/// before its samples, families are not interleaved, names and label sets
/// are legal, no duplicate samples, counters hold non-negative integers,
/// and every histogram series has increasing bucket bounds, non-decreasing
/// cumulative counts, a final `le="+Inf"` bucket matching `_count`, and a
/// `_sum`.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_prometheus(text: &str) -> Result<PromCheck, String> {
    let mut check = PromCheck::default();
    // family name -> (kind, samples seen, closed)
    let mut families: BTreeMap<String, (MetricKind, bool, bool)> = BTreeMap::new();
    let mut helps: std::collections::BTreeSet<String> = Default::default();
    let mut seen_samples: std::collections::BTreeSet<String> = Default::default();
    let mut current: Option<String> = None;
    // histogram family -> label-set (without `le`, rendered) -> series
    let mut hist: BTreeMap<String, BTreeMap<String, HistSeries>> = BTreeMap::new();

    let switch_family = |fam: &str,
                         current: &mut Option<String>,
                         families: &mut BTreeMap<String, (MetricKind, bool, bool)>,
                         hist: &mut BTreeMap<String, BTreeMap<String, HistSeries>>,
                         check: &mut PromCheck|
     -> Result<(), String> {
        if current.as_deref() == Some(fam) {
            return Ok(());
        }
        if let Some(prev) = current.take() {
            if let Some(entry) = families.get_mut(&prev) {
                entry.2 = true;
            }
            if let Some(series) = hist.get(&prev) {
                finish_hist_family(&prev, series, check)?;
            }
        }
        if families.get(fam).is_some_and(|f| f.2) {
            return Err(format!("family {fam} is interleaved with other families"));
        }
        *current = Some(fam.to_owned());
        Ok(())
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(err(format!("invalid metric name {name:?}")));
            }
            if !helps.insert(name.to_owned()) {
                return Err(err(format!("duplicate # HELP for {name}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or("");
            let kind = match it.next() {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                other => return Err(err(format!("unsupported TYPE {other:?}"))),
            };
            if !valid_metric_name(name) {
                return Err(err(format!("invalid metric name {name:?}")));
            }
            if families.contains_key(name) {
                return Err(err(format!("duplicate # TYPE for {name}")));
            }
            families.insert(name.to_owned(), (kind, false, false));
            switch_family(name, &mut current, &mut families, &mut hist, &mut check).map_err(err)?;
            check.families += 1;
            continue;
        }
        if line.starts_with('#') {
            return Err(err(format!("unexpected comment line: {line}")));
        }

        let (name, label_body, value_str) = split_sample_line(line).map_err(err)?;
        if !valid_metric_name(name) {
            return Err(err(format!("invalid sample name {name:?}")));
        }
        let labels = parse_labels(label_body).map_err(err)?;
        let value = parse_prom_value(value_str).map_err(err)?;
        let rendered_labels: Vec<String> =
            labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
        let sample_id = format!("{name}{{{}}}", rendered_labels.join(","));
        if !seen_samples.insert(sample_id.clone()) {
            return Err(err(format!("duplicate sample {sample_id}")));
        }

        // Resolve the family: exact name, or a histogram suffix.
        let (fam_name, suffix) = if families.contains_key(name) {
            (name.to_owned(), None)
        } else {
            let stripped = ["_bucket", "_sum", "_count"].iter().find_map(|s| {
                name.strip_suffix(s)
                    .filter(|base| {
                        families
                            .get(*base)
                            .is_some_and(|f| f.0 == MetricKind::Histogram)
                    })
                    .map(|base| (base.to_owned(), Some(*s)))
            });
            stripped.ok_or_else(|| err(format!("sample {name} has no # TYPE declaration")))?
        };
        let (kind, _, _) = families[&fam_name];
        switch_family(
            &fam_name,
            &mut current,
            &mut families,
            &mut hist,
            &mut check,
        )
        .map_err(err)?;
        families.get_mut(&fam_name).unwrap().1 = true;
        check.samples += 1;

        match (kind, suffix) {
            (MetricKind::Counter, None) => {
                if !(value >= 0.0 && value.fract() == 0.0 && value.is_finite()) {
                    return Err(err(format!(
                        "counter {name} must be a non-negative integer, got {value_str}"
                    )));
                }
            }
            (MetricKind::Gauge, None) => {}
            (MetricKind::Histogram, Some(suffix)) => {
                let series_key: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect();
                let series = hist
                    .entry(fam_name.clone())
                    .or_default()
                    .entry(series_key.join(","))
                    .or_default();
                match suffix {
                    "_bucket" => {
                        let le = labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .ok_or_else(|| err(format!("{name}: bucket without le label")))?;
                        let le = parse_prom_value(&le.1).map_err(err)?;
                        if !(value >= 0.0 && value.fract() == 0.0 && value.is_finite()) {
                            return Err(err(format!(
                                "bucket count must be a non-negative integer, got {value_str}"
                            )));
                        }
                        series.buckets.push((le, value as u64));
                    }
                    "_sum" => {
                        if series.sum_seen {
                            return Err(err(format!("duplicate _sum for {sample_id}")));
                        }
                        series.sum_seen = true;
                    }
                    "_count" => {
                        if !(value >= 0.0 && value.fract() == 0.0 && value.is_finite()) {
                            return Err(err(format!(
                                "_count must be a non-negative integer, got {value_str}"
                            )));
                        }
                        if series.count.is_some() {
                            return Err(err(format!("duplicate _count for {sample_id}")));
                        }
                        series.count = Some(value as u64);
                    }
                    _ => unreachable!(),
                }
            }
            (MetricKind::Histogram, None) => {
                return Err(err(format!(
                    "histogram {fam_name} may only expose _bucket/_sum/_count samples"
                )))
            }
            (_, Some(suffix)) => {
                return Err(err(format!(
                    "{kind:?} {fam_name} may not use suffix {suffix}"
                )))
            }
        }
    }

    if let Some(prev) = current.take() {
        if let Some(series) = hist.get(&prev) {
            finish_hist_family(&prev, series, &mut check)?;
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing_is_exact() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 0);
        assert_eq!(Log2Hist::bucket_of(2), 1);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 2);
        assert_eq!(Log2Hist::bucket_of(5), 3);
        assert_eq!(Log2Hist::bucket_of(1 << 31), 31);
        assert_eq!(Log2Hist::bucket_of((1 << 31) + 1), LOG2_FINITE_BUCKETS);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), LOG2_FINITE_BUCKETS);

        let mut h = Log2Hist::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.counts()[0], 2); // 0 and 1
        assert_eq!(h.counts()[LOG2_FINITE_BUCKETS], 1); // u64::MAX
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    /// Differential property test for [`Log2Hist::merge`]: merging the
    /// histograms of two sample sets must be exactly the histogram of
    /// the pooled samples — bucket counts, totals, and every quantile
    /// bound.
    #[test]
    fn merge_equals_pooled_histogram() {
        // Deterministic xorshift64 so failures reproduce.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let n_a = (next() % 40) as usize;
            let n_b = (next() % 40) as usize;
            // Spread samples across the full bucket range, including the
            // overflow slot.
            let mut sample =
                |n: usize| -> Vec<u64> { (0..n).map(|_| next() >> (next() % 64)).collect() };
            let (sa, sb) = (sample(n_a), sample(n_b));
            let mut ha = Log2Hist::new();
            let mut hb = Log2Hist::new();
            let mut pooled = Log2Hist::new();
            for &v in &sa {
                ha.observe(v);
                pooled.observe(v);
            }
            for &v in &sb {
                hb.observe(v);
                pooled.observe(v);
            }
            let mut merged = ha.clone();
            merged.merge(&hb);
            assert_eq!(
                merged, pooled,
                "trial {trial}: merge must equal pooled histogram"
            );
            assert_eq!(merged.count(), ha.count() + hb.count(), "trial {trial}");
            for p in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
                assert_eq!(
                    merged.quantile_bound(p),
                    pooled.quantile_bound(p),
                    "trial {trial}, p={p}"
                );
            }
        }
        // Merging an empty histogram is the identity.
        let mut h = Log2Hist::new();
        h.observe(7);
        let before = h.clone();
        h.merge(&Log2Hist::new());
        assert_eq!(h, before);
    }

    #[test]
    fn render_passes_own_validator() {
        let mut reg = Registry::new();
        reg.set_counter(
            "dmc_sim_words_total",
            "Words sent",
            &[("workload", "lu")],
            4096,
        );
        reg.add_counter(
            "dmc_sim_words_total",
            "Words sent",
            &[("workload", "xy")],
            1,
        );
        reg.add_counter(
            "dmc_sim_words_total",
            "Words sent",
            &[("workload", "xy")],
            2,
        );
        reg.set_gauge("dmc_sim_time_seconds", "Simulated time", &[], 1.25e-3);
        let mut h = Log2Hist::new();
        h.observe(1);
        h.observe(100);
        reg.set_histogram("dmc_msg_words", "Message sizes", &[("workload", "lu")], &h);
        let doc = reg.render();
        let check = validate_prometheus(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(check.families, 3);
        assert_eq!(check.histograms, 1);
        assert_eq!(doc.matches("# TYPE").count(), 3);
        // The xy counter accumulated both adds.
        assert!(
            doc.contains("dmc_sim_words_total{workload=\"xy\"} 3"),
            "{doc}"
        );
        // Histogram: cumulative buckets ending in +Inf, count == 2.
        assert!(
            doc.contains("dmc_msg_words_bucket{le=\"+Inf\",workload=\"lu\"} 2"),
            "{doc}"
        );
        assert!(
            doc.contains("dmc_msg_words_count{workload=\"lu\"} 2"),
            "{doc}"
        );
        assert!(
            doc.contains("dmc_msg_words_sum{workload=\"lu\"} 101"),
            "{doc}"
        );
    }

    #[test]
    fn render_is_deterministic() {
        let build = |order_flip: bool| {
            let mut reg = Registry::new();
            let pairs: Vec<(&str, u64)> = if order_flip {
                vec![("b", 2), ("a", 1)]
            } else {
                vec![("a", 1), ("b", 2)]
            };
            for (l, v) in pairs {
                reg.set_counter("c_total", "c", &[("k", l)], v);
            }
            reg.render()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        // Sample without TYPE.
        assert!(validate_prometheus("orphan 1\n")
            .unwrap_err()
            .contains("no # TYPE"));
        // Duplicate sample.
        let doc = "# TYPE a counter\na 1\na 2\n";
        assert!(validate_prometheus(doc)
            .unwrap_err()
            .contains("duplicate sample"));
        // Interleaved families.
        let doc = "# TYPE a counter\n# TYPE b counter\na 1\nb 1\na 2\n";
        assert!(validate_prometheus(doc)
            .unwrap_err()
            .contains("interleaved"));
        // Counter with a negative / fractional value.
        let doc = "# TYPE a counter\na -1\n";
        assert!(validate_prometheus(doc)
            .unwrap_err()
            .contains("non-negative"));
        let doc = "# TYPE a counter\na 1.5\n";
        assert!(validate_prometheus(doc)
            .unwrap_err()
            .contains("non-negative"));
        // Histogram: non-cumulative buckets.
        let doc = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(doc).unwrap_err().contains("decreases"));
        // Histogram: _count disagrees with the +Inf bucket.
        let doc = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate_prometheus(doc)
            .unwrap_err()
            .contains("_count 4 != +Inf bucket 5"));
        // Histogram: missing +Inf.
        let doc = "# TYPE h histogram\nh_bucket{le=\"4\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(doc).unwrap_err().contains("+Inf"));
        // Histogram: missing _sum.
        let doc = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        assert!(validate_prometheus(doc)
            .unwrap_err()
            .contains("missing _sum"));
        // Bad metric name.
        let doc = "# TYPE 9bad counter\n";
        assert!(validate_prometheus(doc)
            .unwrap_err()
            .contains("invalid metric name"));
        // Unquoted label value.
        let doc = "# TYPE a counter\na{k=v} 1\n";
        assert!(validate_prometheus(doc).unwrap_err().contains("quoted"));
    }

    #[test]
    fn label_escapes_round_trip() {
        let mut reg = Registry::new();
        reg.set_counter("c_total", "help", &[("k", "a\"b\\c\nd")], 1);
        let doc = reg.render();
        let check = validate_prometheus(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(check.samples, 1);
    }

    /// Each special character round-trips through render → parse alone and
    /// in awkward positions (leading, trailing, doubled), and the parsed
    /// value equals the original — not merely "validates".
    #[test]
    fn label_escapes_round_trip_exhaustive() {
        for v in [
            "\n",
            "\"",
            "\\",
            "\\\\",
            "\\n",
            "ends with backslash\\",
            "\nleading newline",
            "quote\"mid",
            "all\\three\"at\nonce",
            "",
            "plain",
        ] {
            let rendered = escape_label_value(v);
            let body = format!("k=\"{rendered}\"");
            let parsed = parse_labels(&body).unwrap_or_else(|e| panic!("{v:?}: {e}"));
            assert_eq!(parsed, vec![("k".to_owned(), v.to_owned())], "value {v:?}");

            let mut reg = Registry::new();
            reg.set_counter("c_total", "help", &[("k", v)], 1);
            let doc = reg.render();
            validate_prometheus(&doc).unwrap_or_else(|e| panic!("{v:?}: {e}\n{doc}"));
        }
    }

    #[test]
    fn build_info_gauge_renders_and_validates() {
        let mut reg = Registry::new();
        reg.set_build_info("0.1.0", "release");
        let doc = reg.render();
        let check = validate_prometheus(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(check.families, 1);
        assert!(
            doc.contains("dmc_build_info{profile=\"release\",version=\"0.1.0\"} 1"),
            "{doc}"
        );
    }

    #[test]
    fn quantile_bounds_are_exact() {
        // Empty histogram has no quantiles.
        assert_eq!(Log2Hist::new().p50(), None);

        // Single observation: every quantile is its bucket bound.
        let mut h = Log2Hist::new();
        h.observe(5); // bucket 3, bound 8
        assert_eq!(h.p50(), Some(8));
        assert_eq!(h.p99(), Some(8));

        // 100 observations: 90 small (bound 1), 9 medium (bound 128),
        // 1 large (bound 1024). Ranks: p50→50th, p95→95th, p99→99th.
        let mut h = Log2Hist::new();
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..9 {
            h.observe(100);
        }
        h.observe(1000);
        assert_eq!(h.p50(), Some(1));
        assert_eq!(h.quantile_bound(0.90), Some(1));
        assert_eq!(h.p95(), Some(128));
        assert_eq!(h.p99(), Some(128));
        assert_eq!(h.quantile_bound(1.0), Some(1024));

        // Quantile rank clamps at both ends.
        assert_eq!(h.quantile_bound(0.0), Some(1));

        // Overflow observations report u64::MAX.
        let mut h = Log2Hist::new();
        h.observe(u64::MAX);
        assert_eq!(h.p50(), Some(u64::MAX));
    }
}
