//! Deterministic aggregation of polyhedral work-ledger records into
//! per-context profiles.
//!
//! The polyhedral engine's ledger (`dmc_polyhedra::ledger`) emits one
//! record per operation, tagged with the attribution context the pipeline
//! pushed (`stmt<i> → read<j> → <pass>`). This module folds those records
//! into a [`WorkProfile`]: per-(context, operation-kind) aggregates with
//! two exporters —
//!
//! * [`WorkProfile::collapsed_stack`] — the standard collapsed-stack
//!   format (`frame;frame;frame weight`) consumed by `flamegraph.pl`,
//!   inferno, speedscope, etc. Weighted by **top-level charged work
//!   units**, not time, so the file is byte-identical across runs, worker
//!   counts, and cache states (see the ledger's charged-work scheme).
//! * [`WorkProfile::hotspots_markdown`] — a "Hotspots" section for the
//!   explain report: top contexts by work, FM growth ratios flagging
//!   projection blow-ups, and per-context cache effectiveness.
//!
//! The aggregation is order-insensitive (a `BTreeMap` keyed on the
//! context path), so the nondeterministic interleaving of worker-thread
//! ledger flushes never reaches the output.
//!
//! This crate stays zero-dependency: records are fed in as plain
//! [`ProfileOp`] values rather than ledger types.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One engine operation, as fed to [`WorkProfile::add_op`]. Mirrors the
/// ledger's record without depending on it.
#[derive(Clone, Debug, Default)]
pub struct ProfileOp {
    /// Operation kind (stable lower-case name, e.g. `"fm_step"`).
    pub kind: &'static str,
    /// Constraints in the input system.
    pub cons_in: u64,
    /// Constraints in the result system (0 where none).
    pub cons_out: u64,
    /// Work the operation itself performed.
    pub self_units: u64,
    /// Self units plus nested charged work (memoized cost on cache hits).
    pub charged_units: u64,
    /// True when no recorded operation encloses this one.
    pub top_level: bool,
    /// Cache interaction: `None` = uncached, `Some(true)` = hit,
    /// `Some(false)` = miss.
    pub cache_hit: Option<bool>,
    /// Wall-clock duration (diagnostic; never enters the exports).
    pub duration_ns: u64,
}

/// Aggregate for one (context path, operation kind) row.
#[derive(Clone, Debug, Default)]
struct RowAgg {
    ops: u64,
    /// Charged units of top-level records only (partition of total work).
    top_charged: u64,
    self_units: u64,
    cache_hits: u64,
    cache_misses: u64,
    cons_in: u64,
    cons_out: u64,
}

/// Work-unit profile of one captured run. Build with [`WorkProfile::new`]
/// + [`WorkProfile::add_op`], then export.
#[derive(Clone, Debug)]
pub struct WorkProfile {
    /// Root frame of every collapsed stack (typically the workload name).
    root: String,
    rows: BTreeMap<(Vec<String>, &'static str), RowAgg>,
    total_top_charged: u64,
    attributed_top_charged: u64,
    total_ops: u64,
}

/// The frame used for records carrying no attribution context.
const UNATTRIBUTED: &str = "(unattributed)";

impl WorkProfile {
    /// An empty profile whose collapsed stacks are rooted at `root`.
    pub fn new(root: impl Into<String>) -> Self {
        WorkProfile {
            root: root.into(),
            rows: BTreeMap::new(),
            total_top_charged: 0,
            attributed_top_charged: 0,
            total_ops: 0,
        }
    }

    /// Folds one operation recorded under `ctx` (outermost frame first;
    /// empty = unattributed) into the profile.
    pub fn add_op(&mut self, ctx: &[String], op: &ProfileOp) {
        self.total_ops += 1;
        if op.top_level {
            self.total_top_charged += op.charged_units;
            if !ctx.is_empty() {
                self.attributed_top_charged += op.charged_units;
            }
        }
        let key = if ctx.is_empty() {
            (vec![UNATTRIBUTED.to_owned()], op.kind)
        } else {
            (ctx.to_vec(), op.kind)
        };
        let row = self.rows.entry(key).or_default();
        row.ops += 1;
        if op.top_level {
            row.top_charged += op.charged_units;
        }
        row.self_units += op.self_units;
        match op.cache_hit {
            Some(true) => row.cache_hits += 1,
            Some(false) => row.cache_misses += 1,
            None => {}
        }
        row.cons_in += op.cons_in;
        row.cons_out += op.cons_out;
    }

    /// Total top-level charged units — the run's logical work.
    pub fn total_work(&self) -> u64 {
        self.total_top_charged
    }

    /// Fraction of top-level charged units carrying a non-empty
    /// attribution context (1.0 on an empty profile).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_top_charged == 0 {
            1.0
        } else {
            self.attributed_top_charged as f64 / self.total_top_charged as f64
        }
    }

    /// Per-context top-level charged totals, summed over operation kinds:
    /// `(context path joined with ";", work units)`, sorted by descending
    /// work (ties by path). The context for unattributed records is
    /// `"(unattributed)"`. This is the table behind `dmc-profile --top`
    /// and the `work_contexts` section of the bench snapshot.
    pub fn context_totals(&self) -> Vec<(String, u64)> {
        let mut by_ctx: BTreeMap<&[String], u64> = BTreeMap::new();
        for ((ctx, _), row) in &self.rows {
            *by_ctx.entry(ctx.as_slice()).or_default() += row.top_charged;
        }
        let mut out: Vec<(String, u64)> = by_ctx
            .into_iter()
            .filter(|(_, units)| *units > 0)
            .map(|(ctx, units)| (ctx.join(";"), units))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The collapsed-stack export: one `root;frame;…;kind weight` line per
    /// (context, kind) row with top-level charged work, sorted by stack.
    /// Feed to `flamegraph.pl` / `inferno-flamegraph` as-is.
    ///
    /// Deterministic: weights are charged work units (cache-state- and
    /// thread-count-independent) and rows are emitted in `BTreeMap` order,
    /// so two captures of the same compilation produce byte-identical
    /// files.
    pub fn collapsed_stack(&self) -> String {
        let mut out = String::new();
        for ((ctx, kind), row) in &self.rows {
            if row.top_charged == 0 {
                continue;
            }
            let _ = write!(out, "{}", self.root);
            for frame in ctx {
                let _ = write!(out, ";{frame}");
            }
            let _ = writeln!(out, ";{kind} {}", row.top_charged);
        }
        out
    }

    /// The "Hotspots" section of the explain report: totals and
    /// attribution, top contexts by charged work, FM growth ratios, and
    /// per-context cache effectiveness. Deterministic (ties broken by
    /// context path).
    pub fn hotspots_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Hotspots ({})", self.root);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "- total work: {} units across {} recorded operations",
            self.total_top_charged, self.total_ops
        );
        let _ = writeln!(
            out,
            "- attributed to contexts: {} units ({:.1}%)",
            self.attributed_top_charged,
            self.attributed_fraction() * 100.0
        );

        // Fold rows up to their context path (summing kinds).
        #[derive(Default)]
        struct CtxAgg {
            top_charged: u64,
            ops: u64,
            hits: u64,
            misses: u64,
        }
        let mut by_ctx: BTreeMap<&[String], CtxAgg> = BTreeMap::new();
        for ((ctx, _), row) in &self.rows {
            let agg = by_ctx.entry(ctx.as_slice()).or_default();
            agg.top_charged += row.top_charged;
            agg.ops += row.ops;
            agg.hits += row.cache_hits;
            agg.misses += row.cache_misses;
        }

        let mut ranked: Vec<(&[String], &CtxAgg)> = by_ctx.iter().map(|(c, a)| (*c, a)).collect();
        ranked.sort_by(|a, b| b.1.top_charged.cmp(&a.1.top_charged).then(a.0.cmp(b.0)));

        let _ = writeln!(out);
        let _ = writeln!(out, "### Top contexts by work units");
        let _ = writeln!(out);
        for (ctx, agg) in ranked.iter().take(10) {
            if agg.top_charged == 0 {
                continue;
            }
            let pct = if self.total_top_charged == 0 {
                0.0
            } else {
                agg.top_charged as f64 / self.total_top_charged as f64 * 100.0
            };
            let queries = agg.hits + agg.misses;
            let cache = if queries == 0 {
                String::new()
            } else {
                format!(", cache {}/{queries} hits", agg.hits)
            };
            let _ = writeln!(
                out,
                "- {}: {} units ({pct:.1}%), {} ops{cache}",
                ctx.join(" > "),
                agg.top_charged,
                agg.ops
            );
        }

        // FM growth: Σ cons_out / Σ cons_in over the fm_step rows of each
        // context. Ratios ≥ 1.5 mark projection chains whose systems grow
        // as dimensions fall — the classic Fourier–Motzkin blow-up.
        let mut growth: Vec<(&[String], f64, u64)> = self
            .rows
            .iter()
            .filter(|((_, kind), row)| *kind == "fm_step" && row.cons_in > 0)
            .map(|((ctx, _), row)| {
                (
                    ctx.as_slice(),
                    row.cons_out as f64 / row.cons_in as f64,
                    row.ops,
                )
            })
            .collect();
        growth.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "### FM growth (constraints out / in per elimination step)"
        );
        let _ = writeln!(out);
        if growth.is_empty() {
            let _ = writeln!(out, "- no FM steps recorded");
        }
        for (ctx, ratio, steps) in growth.iter().take(10) {
            let flag = if *ratio >= 1.5 { "  ⚠ blow-up" } else { "" };
            let _ = writeln!(
                out,
                "- {}: ×{ratio:.2} over {steps} steps{flag}",
                ctx.join(" > ")
            );
        }

        // Cache effectiveness over contexts that issued memoizable queries.
        let _ = writeln!(out);
        let _ = writeln!(out, "### Cache effectiveness");
        let _ = writeln!(out);
        let mut any = false;
        for (ctx, agg) in &ranked {
            let queries = agg.hits + agg.misses;
            if queries == 0 {
                continue;
            }
            any = true;
            let rate = agg.hits as f64 / queries as f64 * 100.0;
            let _ = writeln!(
                out,
                "- {}: {}/{queries} hits ({rate:.1}%)",
                ctx.join(" > "),
                agg.hits
            );
        }
        if !any {
            let _ = writeln!(out, "- no memoizable queries recorded");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: &'static str, charged: u64, top: bool) -> ProfileOp {
        ProfileOp {
            kind,
            self_units: 1,
            charged_units: charged,
            top_level: top,
            ..ProfileOp::default()
        }
    }

    #[test]
    fn collapsed_stack_weights_top_level_only() {
        let mut p = WorkProfile::new("wl");
        let ctx = vec!["stmt0".to_owned(), "read1".to_owned()];
        p.add_op(&ctx, &op("projection", 10, true));
        p.add_op(&ctx, &op("fm_step", 4, false)); // nested: no stack weight
        p.add_op(&[], &op("lex_split", 3, true));
        let collapsed = p.collapsed_stack();
        assert_eq!(
            collapsed,
            "wl;(unattributed);lex_split 3\nwl;stmt0;read1;projection 10\n"
        );
        assert_eq!(p.total_work(), 13);
        assert!((p.attributed_fraction() - 10.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn context_totals_sum_kinds_and_sort_by_work() {
        let mut p = WorkProfile::new("wl");
        let a = vec!["stmt0".to_owned(), "read1".to_owned()];
        let b = vec!["schedule".to_owned()];
        p.add_op(&a, &op("projection", 10, true));
        p.add_op(&a, &op("feasibility", 5, true));
        p.add_op(&a, &op("fm_step", 99, false)); // nested: no weight
        p.add_op(&b, &op("redundancy", 20, true));
        p.add_op(&[], &op("lex_split", 3, true));
        assert_eq!(
            p.context_totals(),
            vec![
                ("schedule".to_owned(), 20),
                ("stmt0;read1".to_owned(), 15),
                ("(unattributed)".to_owned(), 3),
            ]
        );
    }

    #[test]
    fn aggregation_is_order_insensitive() {
        let ctx_a = vec!["a".to_owned()];
        let ctx_b = vec!["b".to_owned()];
        let mut fwd = WorkProfile::new("r");
        fwd.add_op(&ctx_a, &op("fm_step", 2, true));
        fwd.add_op(&ctx_b, &op("fm_step", 5, true));
        let mut rev = WorkProfile::new("r");
        rev.add_op(&ctx_b, &op("fm_step", 5, true));
        rev.add_op(&ctx_a, &op("fm_step", 2, true));
        assert_eq!(fwd.collapsed_stack(), rev.collapsed_stack());
        assert_eq!(fwd.hotspots_markdown(), rev.hotspots_markdown());
    }

    #[test]
    fn hotspots_flags_fm_growth() {
        let mut p = WorkProfile::new("wl");
        let ctx = vec!["stmt0".to_owned()];
        let grow = ProfileOp {
            kind: "fm_step",
            cons_in: 10,
            cons_out: 25,
            self_units: 1,
            charged_units: 1,
            top_level: true,
            ..ProfileOp::default()
        };
        p.add_op(&ctx, &grow);
        let md = p.hotspots_markdown();
        assert!(md.contains("## Hotspots"), "{md}");
        assert!(md.contains("×2.50"), "{md}");
        assert!(md.contains("blow-up"), "{md}");
    }

    #[test]
    fn empty_profile_is_fully_attributed() {
        let p = WorkProfile::new("wl");
        assert_eq!(p.total_work(), 0);
        assert!((p.attributed_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(p.collapsed_stack(), "");
    }
}
