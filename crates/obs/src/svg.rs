//! Deterministic SVG chart primitives for zero-dependency dashboards.
//!
//! Every coordinate is computed with integer arithmetic and rendered
//! through [`fixed1`] (tenths of a pixel), so the produced bytes depend
//! only on the input values — never on float formatting, hash order, or
//! the machine rendering them. The bench trajectory dashboard
//! (`dmc-bench-explain --html`) composes these into a static page.

/// Escapes `&`, `<`, `>`, and `"` for embedding in SVG/HTML text.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a tenths-scaled integer as a fixed one-decimal number
/// (`123` → `12.3`), the only coordinate format the chart emitters use.
pub fn fixed1(tenths: i64) -> String {
    let sign = if tenths < 0 { "-" } else { "" };
    let v = tenths.unsigned_abs();
    format!("{sign}{}.{}", v / 10, v % 10)
}

/// One named series of a chart; values are plain integers in the unit
/// named by the chart (work units, nanoseconds, permille, …).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x position; all series of a chart share the x axis.
    pub values: Vec<u64>,
}

/// The fixed palette, cycled by series index.
const PALETTE: [&str; 8] = [
    "#2266cc", "#cc3322", "#22aa55", "#aa22aa", "#cc8800", "#117788", "#884422", "#555555",
];

/// The stroke colour for series `i`.
pub fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

const W: i64 = 640;
const H: i64 = 180;
const PAD_L: i64 = 56;
const PAD_R: i64 = 10;
const PAD_T: i64 = 24;
const PAD_B: i64 = 20;

/// Maps `v ∈ [0, max]` to a y coordinate in tenths, top-padded, with the
/// axis inverted (larger values higher on screen).
fn y_of(v: u64, max: u64) -> i64 {
    let span = (H - PAD_T - PAD_B) * 10;
    let max = max.max(1);
    (H - PAD_B) * 10 - (v as i128 * span as i128 / max as i128) as i64
}

/// Maps index `i` of `n` x positions to an x coordinate in tenths.
fn x_of(i: usize, n: usize) -> i64 {
    let span = (W - PAD_L - PAD_R) * 10;
    if n <= 1 {
        return PAD_L * 10 + span / 2;
    }
    PAD_L * 10 + (i as i128 * span as i128 / (n - 1) as i128) as i64
}

/// A line chart of one or more series over a shared integer x axis
/// (history sequence numbers). The y axis runs 0..max over all series;
/// the max and unit are printed as the only tick label, keeping the
/// output small and byte-stable.
pub fn line_chart(title: &str, unit: &str, xs: &[u64], series: &[Series]) -> String {
    let n = xs.len();
    let max = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "<svg class=\"chart\" viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n"
    ));
    out.push_str(&format!(
        "  <text x=\"{PAD_L}\" y=\"15\" class=\"title\">{}</text>\n",
        escape(title)
    ));
    // Frame and the 0 / max tick labels.
    out.push_str(&format!(
        "  <rect x=\"{PAD_L}\" y=\"{PAD_T}\" width=\"{}\" height=\"{}\" class=\"frame\"/>\n",
        W - PAD_L - PAD_R,
        H - PAD_T - PAD_B
    ));
    out.push_str(&format!(
        "  <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{max} {}</text>\n",
        PAD_L - 4,
        PAD_T + 5,
        escape(unit)
    ));
    out.push_str(&format!(
        "  <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">0</text>\n",
        PAD_L - 4,
        H - PAD_B
    ));
    for (si, s) in series.iter().enumerate() {
        let pts: Vec<String> = s
            .values
            .iter()
            .take(n)
            .enumerate()
            .map(|(i, &v)| format!("{},{}", fixed1(x_of(i, n)), fixed1(y_of(v, max))))
            .collect();
        if pts.len() == 1 {
            // A single record: draw a dot rather than a zero-length line.
            let (x, y) = (x_of(0, n), y_of(s.values[0], max));
            out.push_str(&format!(
                "  <circle cx=\"{}\" cy=\"{}\" r=\"3\" fill=\"{}\"/>\n",
                fixed1(x),
                fixed1(y),
                color(si)
            ));
        } else {
            out.push_str(&format!(
                "  <polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.5\" points=\"{}\"/>\n",
                color(si),
                pts.join(" ")
            ));
        }
        // Legend entry, stacked top-right inside the frame.
        let ly = PAD_T + 12 + 12 * si as i64;
        out.push_str(&format!(
            "  <rect x=\"{}\" y=\"{}\" width=\"8\" height=\"8\" fill=\"{}\"/>\n",
            W - PAD_R - 150,
            ly - 7,
            color(si)
        ));
        out.push_str(&format!(
            "  <text x=\"{}\" y=\"{}\" class=\"tick\">{}</text>\n",
            W - PAD_R - 138,
            ly,
            escape(&s.name)
        ));
    }
    // X labels: first and last sequence number.
    if n > 0 {
        out.push_str(&format!(
            "  <text x=\"{PAD_L}\" y=\"{}\" class=\"tick\">#{}</text>\n",
            H - 6,
            xs[0]
        ));
        if n > 1 {
            out.push_str(&format!(
                "  <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">#{}</text>\n",
                W - PAD_R,
                H - 6,
                xs[n - 1]
            ));
        }
    }
    out.push_str("</svg>\n");
    out
}

/// A 100%-stacked bar chart: one bar per x position, each divided into
/// the named parts' shares of that bar's own total. Used for blame
/// shares, where the interesting signal is the mix, not the magnitude.
pub fn stacked_bars(title: &str, xs: &[u64], parts: &[Series]) -> String {
    let n = xs.len();
    let mut out = String::new();
    out.push_str(&format!(
        "<svg class=\"chart\" viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n"
    ));
    out.push_str(&format!(
        "  <text x=\"{PAD_L}\" y=\"15\" class=\"title\">{}</text>\n",
        escape(title)
    ));
    let span_y = (H - PAD_T - PAD_B) * 10;
    let slot = (W - PAD_L - PAD_R) * 10 / n.max(1) as i64;
    let bar_w = (slot * 6 / 10).max(10);
    for (i, label) in xs.iter().enumerate() {
        let total: u64 = parts
            .iter()
            .map(|p| p.values.get(i).copied().unwrap_or(0))
            .sum();
        let x = PAD_L * 10 + slot * i as i64 + (slot - bar_w) / 2;
        let mut acc: i128 = 0;
        for (pi, p) in parts.iter().enumerate() {
            let v = p.values.get(i).copied().unwrap_or(0);
            if v == 0 {
                continue;
            }
            let t = total.max(1) as i128;
            let y0 = acc * span_y as i128 / t;
            acc += v as i128;
            let y1 = acc * span_y as i128 / t;
            out.push_str(&format!(
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"/>\n",
                fixed1(x),
                fixed1(PAD_T * 10 + y0 as i64),
                fixed1(bar_w),
                fixed1((y1 - y0) as i64),
                color(pi)
            ));
        }
        out.push_str(&format!(
            "  <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"middle\">#{}</text>\n",
            fixed1(x + bar_w / 2),
            H - 6,
            label
        ));
    }
    for (pi, p) in parts.iter().enumerate() {
        let ly = PAD_T + 12 + 12 * pi as i64;
        out.push_str(&format!(
            "  <rect x=\"{}\" y=\"{}\" width=\"8\" height=\"8\" fill=\"{}\"/>\n",
            W - PAD_R - 150,
            ly - 7,
            color(pi)
        ));
        out.push_str(&format!(
            "  <text x=\"{}\" y=\"{}\" class=\"tick\">{}</text>\n",
            W - PAD_R - 138,
            ly,
            escape(&p.name)
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed1_renders_tenths() {
        assert_eq!(fixed1(0), "0.0");
        assert_eq!(fixed1(1234), "123.4");
        assert_eq!(fixed1(-56), "-5.6");
    }

    #[test]
    fn escape_covers_markup() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn charts_are_deterministic() {
        let xs = [0, 1, 2];
        let series = [
            Series {
                name: "lu".into(),
                values: vec![10, 12, 11],
            },
            Series {
                name: "xy".into(),
                values: vec![5, 5, 9],
            },
        ];
        let a = line_chart("work units", "wu", &xs, &series);
        let b = line_chart("work units", "wu", &xs, &series);
        assert_eq!(a, b);
        assert!(a.contains("<polyline"));
        assert!(a.contains("12 wu"), "max tick label present");
        let s = stacked_bars("blame", &xs, &series);
        assert_eq!(s, stacked_bars("blame", &xs, &series));
        assert!(s.matches("<rect").count() >= 6);
    }

    #[test]
    fn single_point_draws_a_dot() {
        let series = [Series {
            name: "lu".into(),
            values: vec![7],
        }];
        let svg = line_chart("t", "u", &[0], &series);
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("<polyline"));
    }
}
