//! The trace recorder: spans, instant events, lanes, per-thread buffers,
//! and the deterministic merge (see the crate docs for the lane model).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const R: Ordering = Ordering::Relaxed;

/// A typed field value attached to a record.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i128),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (simulated times, flop counts).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl Value {
    /// Renders the value for the deterministic view and the explain
    /// report (`{:?}` for floats: shortest round-trip form).
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::UInt(v) => v.to_string(),
            Value::F64(v) => format!("{v:?}"),
            Value::Bool(v) => v.to_string(),
            Value::Str(v) => v.clone(),
        }
    }

    /// The value as JSON (strings quoted and escaped).
    pub fn to_json(&self) -> String {
        match self {
            Value::Str(v) => crate::json::quote(v),
            Value::F64(v) if !v.is_finite() => crate::json::quote(&format!("{v}")),
            other => other.render(),
        }
    }
}

impl From<i128> for Value {
    fn from(v: i128) -> Self {
        Value::Int(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

/// Builds one key/value field.
pub fn field(key: &'static str, value: impl Into<Value>) -> (&'static str, Value) {
    (key, value.into())
}

/// What a record marks: span begin, span end, or an instant event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span entry.
    Begin,
    /// Span exit.
    End,
    /// Instant event.
    Instant,
}

/// One trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Begin / End / Instant.
    pub phase: Phase,
    /// Span or event name.
    pub name: &'static str,
    /// Nanoseconds since the capture started (monotonic clock).
    pub ts_ns: u64,
    /// Whether the record is part of the deterministic trace structure
    /// (identical across worker counts and cache states). Diagnostic
    /// records set this to `false` and are excluded from
    /// [`Trace::deterministic_view`].
    pub det: bool,
    /// Key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A lane's ordering key. Lanes are merged in the natural order of their
/// keys, independent of thread scheduling.
pub type LaneKey = Vec<u64>;

/// The main lane: top-level pipeline phases recorded by the thread that
/// called [`compile`](https://docs.rs/dmc-core)/`build_schedule`/`run`.
pub fn main_lane() -> LaneKey {
    vec![0]
}

/// The lane of one (statement, read) analysis job of the pipeline
/// fan-out, keyed by textual order so every worker count merges the same.
pub fn read_lane(stmt_idx: usize, read_no: usize) -> LaneKey {
    vec![1, stmt_idx as u64, read_no as u64]
}

/// The lane of one simulated processor's event timeline, keyed by
/// processor number. Sorts after the main and read lanes, so the machine
/// Gantt appears below the compiler lanes in exported traces.
pub fn sim_lane(proc: usize) -> LaneKey {
    vec![2, proc as u64]
}

/// Records emitted outside any lane scope (e.g. from a thread the
/// pipeline does not manage). Kept, but at the very end of the merge.
fn orphan_lane() -> LaneKey {
    vec![u64::MAX]
}

/// One lane of a merged trace.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneRecords {
    /// The ordering key.
    pub key: LaneKey,
    /// Human-readable label (Chrome thread name).
    pub label: String,
    /// Records in emission order.
    pub records: Vec<Record>,
}

/// A finished capture: lanes sorted by key, each lane's records in the
/// order its owning code emitted them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The merged lanes.
    pub lanes: Vec<LaneRecords>,
}

impl Trace {
    /// The deterministic skeleton of the trace: one rendered line per
    /// deterministic record, timestamps stripped. Two captures of the
    /// same compilation — regardless of worker count, memo-cache state,
    /// or wall-clock speed — produce equal views.
    pub fn deterministic_view(&self) -> Vec<String> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            for r in lane.records.iter().filter(|r| r.det) {
                let fields: Vec<String> =
                    r.fields.iter().map(|(k, v)| format!("{k}={}", v.render())).collect();
                out.push(format!(
                    "{}|{:?}|{}|{}",
                    lane.label,
                    r.phase,
                    r.name,
                    fields.join(",")
                ));
            }
        }
        out
    }

    /// Iterates `(lane, record)` over every lane in merge order.
    pub fn records(&self) -> impl Iterator<Item = (&LaneRecords, &Record)> {
        self.lanes.iter().flat_map(|l| l.records.iter().map(move |r| (l, r)))
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.records.len()).sum()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Global recorder state.

static ENABLED: AtomicBool = AtomicBool::new(false);
static START_NS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    (epoch().elapsed().as_nanos() as u64).saturating_sub(START_NS.load(R))
}

type Store = BTreeMap<LaneKey, (String, Vec<Record>)>;

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

struct LaneBuf {
    key: LaneKey,
    label: String,
    records: Vec<Record>,
    /// Re-entry count: opening a lane scope whose key matches the current
    /// top reuses the buffer instead of nesting, so one thread's records
    /// for a lane always flush as a single in-order batch.
    depth: usize,
}

thread_local! {
    static LANES: RefCell<Vec<LaneBuf>> = const { RefCell::new(Vec::new()) };
}

fn flush(buf: LaneBuf) {
    if buf.records.is_empty() {
        return;
    }
    let mut store = store().lock().unwrap_or_else(|e| e.into_inner());
    let entry = store.entry(buf.key).or_insert_with(|| (buf.label, Vec::new()));
    entry.1.extend(buf.records);
}

fn emit(rec: Record) {
    LANES.with(|l| {
        let mut lanes = l.borrow_mut();
        match lanes.last_mut() {
            Some(top) => top.records.push(rec),
            None => flush(LaneBuf {
                key: orphan_lane(),
                label: "untracked".to_owned(),
                records: vec![rec],
                depth: 0,
            }),
        }
    });
}

thread_local! {
    /// Suppression depth; see [`suppress`]. Only consulted after the
    /// `ENABLED` load succeeds, so the tracing-off fast path stays a
    /// single relaxed atomic load.
    static SUPPRESSED: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Whether a capture is in progress and the current thread is not inside
/// a [`suppress`] scope. When tracing is off this is a single relaxed
/// atomic load — the entire cost of the subsystem.
pub fn enabled() -> bool {
    ENABLED.load(R) && SUPPRESSED.with(|s| s.get()) == 0
}

/// Mutes recording on the current thread until the guard drops. Used
/// around internal re-runs of instrumented code — e.g. the schedule
/// planner's dry-run simulations — whose records would otherwise pollute
/// (and, for the simulator's per-processor timelines, de-monotonize) the
/// capture. Nests; only affects the calling thread.
pub fn suppress() -> SuppressGuard {
    SUPPRESSED.with(|s| s.set(s.get() + 1));
    SuppressGuard { _priv: () }
}

/// Re-enables recording on the current thread when dropped.
pub struct SuppressGuard {
    _priv: (),
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// Starts a capture: clears the global store and re-anchors the clock.
/// Captures are process-wide; callers that may run concurrently (tests)
/// must serialize captures themselves.
pub fn start_capture() {
    let _ = epoch();
    store().lock().unwrap_or_else(|e| e.into_inner()).clear();
    START_NS.store(epoch().elapsed().as_nanos() as u64, R);
    ENABLED.store(true, R);
}

/// Stops the capture and returns the merged trace. Buffers of lane scopes
/// still open on the calling thread are drained in place (their guards
/// then close over empty buffers).
pub fn finish_capture() -> Trace {
    ENABLED.store(false, R);
    LANES.with(|l| {
        for buf in l.borrow_mut().iter_mut() {
            flush(LaneBuf {
                key: buf.key.clone(),
                label: buf.label.clone(),
                records: std::mem::take(&mut buf.records),
                depth: 0,
            });
        }
    });
    let mut map = store().lock().unwrap_or_else(|e| e.into_inner());
    let lanes = std::mem::take(&mut *map)
        .into_iter()
        .map(|(key, (label, records))| LaneRecords { key, label, records })
        .collect();
    Trace { lanes }
}

/// Opens a lane scope on the current thread: records emitted until the
/// guard drops belong to `key`. Re-opening the current top key reuses the
/// buffer (see [`LaneKey`]); the buffer is flushed to the global store
/// when the outermost guard for the key drops.
pub fn lane(key: LaneKey, label: impl Into<String>) -> LaneGuard {
    if !enabled() {
        return LaneGuard { armed: false };
    }
    LANES.with(|l| {
        let mut lanes = l.borrow_mut();
        if let Some(top) = lanes.last_mut() {
            if top.key == key {
                top.depth += 1;
                return;
            }
        }
        lanes.push(LaneBuf { key, label: label.into(), records: Vec::new(), depth: 0 });
    });
    LaneGuard { armed: true }
}

/// Closes its lane scope on drop.
pub struct LaneGuard {
    armed: bool,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        LANES.with(|l| {
            let mut lanes = l.borrow_mut();
            if let Some(top) = lanes.last_mut() {
                if top.depth > 0 {
                    top.depth -= 1;
                    return;
                }
            }
            if let Some(buf) = lanes.pop() {
                flush(buf);
            }
        });
    }
}

/// Begins a span; the guard emits the matching end record on drop.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Begins a span with fields, building them only when tracing is on.
pub fn span_f(
    name: &'static str,
    fields: impl FnOnce() -> Vec<(&'static str, Value)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    span_with(name, fields())
}

fn span_with(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    emit(Record { phase: Phase::Begin, name, ts_ns: now_ns(), det: true, fields });
    SpanGuard { name, armed: true }
}

/// Ends its span on drop (balanced even on early return or panic).
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            emit(Record {
                phase: Phase::End,
                name: self.name,
                ts_ns: now_ns(),
                det: true,
                fields: Vec::new(),
            });
        }
    }
}

/// Emits a deterministic instant event.
pub fn event(name: &'static str, fields: Vec<(&'static str, Value)>) {
    if enabled() {
        emit(Record { phase: Phase::Instant, name, ts_ns: now_ns(), det: true, fields });
    }
}

/// Emits a deterministic instant event, building fields lazily.
pub fn event_f(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Value)>) {
    if enabled() {
        emit(Record { phase: Phase::Instant, name, ts_ns: now_ns(), det: true, fields: fields() });
    }
}

/// Emits a diagnostic event whose presence may depend on scheduling or
/// cache state; excluded from [`Trace::deterministic_view`].
pub fn event_nondet(name: &'static str, fields: Vec<(&'static str, Value)>) {
    if enabled() {
        emit(Record { phase: Phase::Instant, name, ts_ns: now_ns(), det: false, fields });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Captures are process-wide; serialize the tests of this module.
    static CAPTURE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let _lane = lane(main_lane(), "main");
        let _span = span("nothing");
        event("nothing", vec![field("k", 1u64)]);
        // No capture was started: nothing may have been recorded.
        start_capture();
        let t = finish_capture();
        assert!(t.is_empty());
    }

    #[test]
    fn lanes_merge_sorted_and_spans_balance() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        start_capture();
        {
            let _lane = lane(main_lane(), "main");
            let _s = span_f("compile", || vec![field("jobs", 2u64)]);
            {
                let _rl = lane(read_lane(1, 0), "read 1/0");
                let _rs = span("read");
                event("prov.pass", vec![field("pass", "self_reuse")]);
            }
            {
                let _rl = lane(read_lane(0, 0), "read 0/0");
                let _rs = span("read");
            }
            event_nondet("compile.workers", vec![field("workers", 4u64)]);
        }
        let t = finish_capture();
        // Lanes sorted by key: main [0] first, then read lanes in textual
        // order regardless of emission order.
        let labels: Vec<&str> = t.lanes.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, vec!["main", "read 0/0", "read 1/0"]);
        // Begin/End balance per lane.
        for lane in &t.lanes {
            let mut depth = 0i64;
            for r in &lane.records {
                match r.phase {
                    Phase::Begin => depth += 1,
                    Phase::End => depth -= 1,
                    Phase::Instant => {}
                }
                assert!(depth >= 0, "unbalanced in {}", lane.label);
            }
            assert_eq!(depth, 0, "unbalanced in {}", lane.label);
        }
        // The nondet event is excluded from the deterministic view.
        let view = t.deterministic_view();
        assert!(view.iter().all(|l| !l.contains("compile.workers")), "{view:?}");
        assert!(view.iter().any(|l| l.contains("pass=self_reuse")));
    }

    #[test]
    fn suppress_mutes_only_its_scope() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        start_capture();
        {
            let _lane = lane(main_lane(), "main");
            event("kept.before", vec![]);
            {
                let _mute = suppress();
                assert!(!enabled());
                let _inner = suppress(); // nests
                drop(_inner);
                assert!(!enabled(), "outer suppression still active");
                event("muted", vec![]);
                let _s = span("muted.span");
            }
            assert!(enabled());
            event("kept.after", vec![]);
        }
        let t = finish_capture();
        let names: Vec<&str> = t.lanes[0].records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["kept.before", "kept.after"]);
    }

    #[test]
    fn same_key_lane_scopes_share_one_buffer() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        start_capture();
        {
            let _outer = lane(main_lane(), "main");
            event("a", vec![]);
            {
                let _inner = lane(main_lane(), "main");
                event("b", vec![]);
            }
            event("c", vec![]);
        }
        let t = finish_capture();
        let names: Vec<&str> = t.lanes[0].records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["a", "b", "c"], "re-entry must preserve program order");
    }

    #[test]
    fn worker_threads_merge_deterministically() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        let run = |workers: usize| {
            start_capture();
            {
                let _lane = lane(main_lane(), "main");
                let _s = span("compile");
                let jobs: Vec<usize> = (0..6).collect();
                if workers <= 1 {
                    for &j in &jobs {
                        let _rl = lane(read_lane(j, 0), format!("read {j}/0"));
                        event("job", vec![field("j", j)]);
                    }
                } else {
                    std::thread::scope(|scope| {
                        for chunk in jobs.chunks(jobs.len().div_ceil(workers)) {
                            scope.spawn(move || {
                                for &j in chunk {
                                    let _rl = lane(read_lane(j, 0), format!("read {j}/0"));
                                    event("job", vec![field("j", j)]);
                                }
                            });
                        }
                    });
                }
            }
            finish_capture().deterministic_view()
        };
        assert_eq!(run(1), run(3), "merged trace must not depend on worker count");
    }
}
