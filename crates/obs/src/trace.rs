//! The trace recorder: spans, instant events, lanes, per-thread buffers,
//! and the deterministic merge (see the crate docs for the lane model).
//!
//! # Capture contexts
//!
//! All recorder state is scoped to an [`ObsContext`]: each context owns
//! its capture flag, its lane store, its self-overhead counters, and a
//! metrics [`Registry`]. A process-wide *default context* backs the
//! classic free-function API ([`start_capture`] / [`finish_capture`] /
//! [`lane`] / [`span`] / [`event`]), which behaves exactly as it did when
//! the recorder was a process global. Concurrent sessions each create
//! their own context and [`install`](ObsContext::install) it on every
//! thread that works for them; records emitted on a thread go to that
//! thread's current context, so two captures running at once stay fully
//! isolated.
//!
//! When no capture is in progress anywhere in the process, [`enabled`]
//! is a single relaxed atomic load — the entire cost of the subsystem.
//!
//! # Lane lifecycle and teardown
//!
//! A lane buffer opened by any thread is registered with its owning
//! context. `finish_capture` first disables the context, then drains
//! every still-registered lane buffer (in lane-key order) into the store
//! before taking the merged trace, so records emitted by worker threads
//! that happened-before the finish are never dropped. Records emitted
//! *after* the finish land in buffers stamped with a stale capture epoch
//! and are discarded at flush — they can never cross-attach to the next
//! capture.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::Registry;

const R: Ordering = Ordering::Relaxed;

/// A typed field value attached to a record.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i128),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (simulated times, flop counts).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl Value {
    /// Renders the value for the deterministic view and the explain
    /// report (`{:?}` for floats: shortest round-trip form).
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::UInt(v) => v.to_string(),
            Value::F64(v) => format!("{v:?}"),
            Value::Bool(v) => v.to_string(),
            Value::Str(v) => v.clone(),
        }
    }

    /// The value as JSON (strings quoted and escaped).
    pub fn to_json(&self) -> String {
        match self {
            Value::Str(v) => crate::json::quote(v),
            Value::F64(v) if !v.is_finite() => crate::json::quote(&format!("{v}")),
            other => other.render(),
        }
    }

    /// Rough in-memory size of the value payload, for the self-overhead
    /// byte counter.
    fn weight(&self) -> u64 {
        match self {
            Value::Str(v) => v.len() as u64,
            _ => 8,
        }
    }
}

impl From<i128> for Value {
    fn from(v: i128) -> Self {
        Value::Int(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

/// Builds one key/value field.
pub fn field(key: &'static str, value: impl Into<Value>) -> (&'static str, Value) {
    (key, value.into())
}

/// What a record marks: span begin, span end, or an instant event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span entry.
    Begin,
    /// Span exit.
    End,
    /// Instant event.
    Instant,
}

/// One trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Begin / End / Instant.
    pub phase: Phase,
    /// Span or event name.
    pub name: &'static str,
    /// Nanoseconds since the capture started (monotonic clock).
    pub ts_ns: u64,
    /// Whether the record is part of the deterministic trace structure
    /// (identical across worker counts and cache states). Diagnostic
    /// records set this to `false` and are excluded from
    /// [`Trace::deterministic_view`].
    pub det: bool,
    /// Key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Rough in-memory size of the record, for the self-overhead byte
    /// counter: name plus header plus field keys and payloads.
    fn weight(&self) -> u64 {
        let fields: u64 = self
            .fields
            .iter()
            .map(|(k, v)| k.len() as u64 + v.weight())
            .sum();
        self.name.len() as u64 + 16 + fields
    }
}

/// A lane's ordering key. Lanes are merged in the natural order of their
/// keys, independent of thread scheduling.
pub type LaneKey = Vec<u64>;

/// The main lane: top-level pipeline phases recorded by the thread that
/// called [`compile`](https://docs.rs/dmc-core)/`build_schedule`/`run`.
pub fn main_lane() -> LaneKey {
    vec![0]
}

/// The lane of one (statement, read) analysis job of the pipeline
/// fan-out, keyed by textual order so every worker count merges the same.
pub fn read_lane(stmt_idx: usize, read_no: usize) -> LaneKey {
    vec![1, stmt_idx as u64, read_no as u64]
}

/// The lane of one simulated processor's event timeline, keyed by
/// processor number. Sorts after the main and read lanes, so the machine
/// Gantt appears below the compiler lanes in exported traces.
pub fn sim_lane(proc: usize) -> LaneKey {
    vec![2, proc as u64]
}

/// Records emitted outside any lane scope (e.g. from a thread the
/// pipeline does not manage). Kept, but at the very end of the merge.
fn orphan_lane() -> LaneKey {
    vec![u64::MAX]
}

/// One lane of a merged trace.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneRecords {
    /// The ordering key.
    pub key: LaneKey,
    /// Human-readable label (Chrome thread name).
    pub label: String,
    /// Records in emission order.
    pub records: Vec<Record>,
}

/// A finished capture: lanes sorted by key, each lane's records in the
/// order its owning code emitted them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The merged lanes.
    pub lanes: Vec<LaneRecords>,
}

impl Trace {
    /// The deterministic skeleton of the trace: one rendered line per
    /// deterministic record, timestamps stripped. Two captures of the
    /// same compilation — regardless of worker count, memo-cache state,
    /// or wall-clock speed — produce equal views.
    pub fn deterministic_view(&self) -> Vec<String> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            for r in lane.records.iter().filter(|r| r.det) {
                let fields: Vec<String> = r
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render()))
                    .collect();
                out.push(format!(
                    "{}|{:?}|{}|{}",
                    lane.label,
                    r.phase,
                    r.name,
                    fields.join(",")
                ));
            }
        }
        out
    }

    /// Iterates `(lane, record)` over every lane in merge order.
    pub fn records(&self) -> impl Iterator<Item = (&LaneRecords, &Record)> {
        self.lanes
            .iter()
            .flat_map(|l| l.records.iter().map(move |r| (l, r)))
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.records.len()).sum()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Capture contexts.

/// Number of contexts with a capture in progress, process-wide. The
/// tracing-off fast path checks this single atomic before touching any
/// thread-local or per-context state.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

type Store = BTreeMap<LaneKey, (String, Vec<Record>)>;

/// One lane buffer, shared between the thread that opened it (which
/// appends records) and the owning context (which drains it at capture
/// teardown). The per-record lock is uncontended except at teardown.
struct LiveLane {
    key: LaneKey,
    label: String,
    /// The capture epoch the lane was opened under; flushes whose epoch
    /// is stale (the capture has since finished or restarted) discard.
    epoch: u64,
    records: Mutex<Vec<Record>>,
}

/// The state behind one [`ObsContext`] handle.
struct CtxInner {
    enabled: AtomicBool,
    start_ns: AtomicU64,
    /// Capture generation. Only written while `store` is locked, so a
    /// flush that checks it under the store lock is race-free.
    epoch: AtomicU64,
    store: Mutex<Store>,
    /// Lane buffers currently open on some thread. Drained (in key
    /// order) by `finish_capture`.
    live: Mutex<Vec<Arc<LiveLane>>>,
    // Self-overhead counters, reset at each start_capture.
    records: AtomicU64,
    bytes: AtomicU64,
    trace_ns: AtomicU64,
    dropped: AtomicU64,
    registry: Mutex<Registry>,
}

impl CtxInner {
    fn new() -> Self {
        CtxInner {
            enabled: AtomicBool::new(false),
            start_ns: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            store: Mutex::new(BTreeMap::new()),
            live: Mutex::new(Vec::new()),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            trace_ns: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            registry: Mutex::new(Registry::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        (epoch().elapsed().as_nanos() as u64).saturating_sub(self.start_ns.load(R))
    }

    fn start_capture(&self) {
        let _ = epoch();
        {
            let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
            store.clear();
            self.epoch.fetch_add(1, R);
        }
        // Lanes left over from a previous capture carry a stale epoch;
        // dropping the registry entries is enough — their flushes will
        // discard.
        self.live.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.records.store(0, R);
        self.bytes.store(0, R);
        self.trace_ns.store(0, R);
        self.dropped.store(0, R);
        self.start_ns.store(epoch().elapsed().as_nanos() as u64, R);
        if !self.enabled.swap(true, R) {
            ACTIVE.fetch_add(1, R);
        }
    }

    fn finish_capture(&self) -> Trace {
        if self.enabled.swap(false, R) {
            ACTIVE.fetch_sub(1, R);
        }
        // Drain every still-open lane buffer, in key order so the drain
        // itself is deterministic. Records are taken before the store is
        // locked (flushing guards lock records then store; taking both
        // here in the opposite order could deadlock).
        let mut live = std::mem::take(&mut *self.live.lock().unwrap_or_else(|e| e.into_inner()));
        live.sort_by(|a, b| a.key.cmp(&b.key));
        let batches: Vec<(LaneKey, String, u64, Vec<Record>)> = live
            .iter()
            .map(|l| {
                let records =
                    std::mem::take(&mut *l.records.lock().unwrap_or_else(|e| e.into_inner()));
                (l.key.clone(), l.label.clone(), l.epoch, records)
            })
            .collect();
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.epoch.load(R);
        for (key, label, lane_epoch, records) in batches {
            if records.is_empty() || lane_epoch != cur {
                continue;
            }
            let entry = store.entry(key).or_insert_with(|| (label, Vec::new()));
            entry.1.extend(records);
        }
        // Stale the epoch so flushes racing past this point discard
        // instead of attaching to the next capture.
        self.epoch.fetch_add(1, R);
        let lanes = std::mem::take(&mut *store)
            .into_iter()
            .map(|(key, (label, records))| LaneRecords {
                key,
                label,
                records,
            })
            .collect();
        Trace { lanes }
    }

    /// Merges a drained lane batch into the store if its capture is
    /// still the current one.
    fn flush_batch(&self, key: LaneKey, label: String, lane_epoch: u64, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        if lane_epoch != self.epoch.load(R) {
            return; // the capture finished or restarted: discard
        }
        let entry = store.entry(key).or_insert_with(|| (label, Vec::new()));
        entry.1.extend(records);
    }

    fn overhead(&self) -> ObsOverhead {
        ObsOverhead {
            records: self.records.load(R),
            bytes: self.bytes.load(R),
            trace_ns: self.trace_ns.load(R),
            dropped: self.dropped.load(R),
        }
    }
}

fn default_ctx() -> &'static Arc<CtxInner> {
    static DEFAULT: OnceLock<Arc<CtxInner>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(CtxInner::new()))
}

thread_local! {
    /// The context records on this thread go to; `None` means the
    /// process default context.
    static CURRENT: RefCell<Option<Arc<CtxInner>>> = const { RefCell::new(None) };
}

fn with_current<T>(f: impl FnOnce(&Arc<CtxInner>) -> T) -> T {
    CURRENT.with(|c| match &*c.borrow() {
        Some(ctx) => f(ctx),
        None => f(default_ctx()),
    })
}

/// A scoped observability context: an isolated capture store, overhead
/// accounting, and a metrics [`Registry`]. Handles are cheap to clone
/// (an `Arc`); clones refer to the same context.
///
/// A context only receives records from threads it is
/// [`install`](Self::install)ed on. The compile fan-out in
/// `dmc_core::Session` installs the calling thread's current context on
/// every worker it spawns, so a context installed around a `compile`
/// call observes the whole pipeline.
#[derive(Clone)]
pub struct ObsContext {
    inner: Arc<CtxInner>,
}

impl ObsContext {
    /// Creates a fresh, idle context.
    pub fn new() -> Self {
        ObsContext {
            inner: Arc::new(CtxInner::new()),
        }
    }

    /// A handle to the process default context — the one the free
    /// functions [`start_capture`]/[`finish_capture`] operate on.
    pub fn default_context() -> Self {
        ObsContext {
            inner: Arc::clone(default_ctx()),
        }
    }

    /// A handle to the calling thread's current context (the default
    /// context unless an [`install`](Self::install) guard is live).
    pub fn current() -> Self {
        ObsContext {
            inner: with_current(Arc::clone),
        }
    }

    /// Whether two handles refer to the same context.
    pub fn same_context(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Starts a capture in this context: clears the store, re-anchors
    /// the clock, and resets the overhead counters. Restarting while a
    /// capture is in progress discards its records.
    pub fn start_capture(&self) {
        self.inner.start_capture();
    }

    /// Stops the capture and returns the merged trace. Lane buffers
    /// still open on *any* thread are drained (in lane-key order);
    /// records emitted after this call are discarded, never attached to
    /// a later capture.
    pub fn finish_capture(&self) -> Trace {
        self.inner.finish_capture()
    }

    /// Whether a capture is in progress in this context.
    pub fn is_capturing(&self) -> bool {
        self.inner.enabled.load(R)
    }

    /// Makes this context the calling thread's current context until the
    /// guard drops (the previous context is restored). Guards nest.
    pub fn install(&self) -> CtxGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.inner)));
        CtxGuard {
            prev,
            _not_send: PhantomData,
        }
    }

    /// The capture's self-overhead counters so far.
    pub fn overhead(&self) -> ObsOverhead {
        self.inner.overhead()
    }

    /// Runs `f` with exclusive access to this context's metrics
    /// registry.
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        let mut reg = self
            .inner
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        f(&mut reg)
    }
}

impl Default for ObsContext {
    fn default() -> Self {
        ObsContext::new()
    }
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("capturing", &self.is_capturing())
            .field("overhead", &self.overhead())
            .finish()
    }
}

/// Restores the thread's previous context on drop. `!Send`: the guard
/// must drop on the thread that installed it.
pub struct CtxGuard {
    prev: Option<Arc<CtxInner>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Self-overhead counters of one capture: what the recorder itself
/// cost. Exported as `dmc_obs_*` meta-metrics by `dmc_obs::health`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsOverhead {
    /// Records kept.
    pub records: u64,
    /// Approximate bytes of kept record payloads.
    pub bytes: u64,
    /// Nanoseconds spent inside the recorder's emit path.
    pub trace_ns: u64,
    /// Records dropped by the record cap (see [`push_record_cap`]).
    pub dropped: u64,
}

impl ObsOverhead {
    /// Field-wise sum, for aggregating contexts into a health snapshot.
    pub fn merged(&self, other: &ObsOverhead) -> ObsOverhead {
        ObsOverhead {
            records: self.records + other.records,
            bytes: self.bytes + other.bytes,
            trace_ns: self.trace_ns + other.trace_ns,
            dropped: self.dropped + other.dropped,
        }
    }
}

// ---------------------------------------------------------------------------
// Record cap (sampling knob).

thread_local! {
    /// Per-thread record cap; 0 means unbounded. Consulted against the
    /// current context's kept-record count.
    static RECORD_CAP: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Caps the number of records a capture keeps, as seen from the calling
/// thread: once the current context holds `cap` records, further spans
/// and events on this thread are dropped (and counted in
/// [`ObsOverhead::dropped`]). `0` restores unbounded recording. The cap
/// is thread-local and restored when the guard drops — the same
/// discipline as the engine's thread-local tuning, so worker threads
/// install it alongside their tuning scope.
///
/// Span guards that already emitted a begin record still emit their end
/// record past the cap, keeping every lane balanced; the capture can
/// therefore exceed the cap by the open-span depth.
pub fn push_record_cap(cap: u64) -> RecordCapGuard {
    let prev = RECORD_CAP.with(|c| c.replace(cap));
    RecordCapGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// The calling thread's record cap (0 = unbounded).
pub fn record_cap() -> u64 {
    RECORD_CAP.with(|c| c.get())
}

/// Restores the previous record cap on drop. `!Send`.
pub struct RecordCapGuard {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for RecordCapGuard {
    fn drop(&mut self) {
        RECORD_CAP.with(|c| c.set(self.prev));
    }
}

/// Whether the current thread's cap forbids keeping another record in
/// `ctx`; counts the drop if so.
fn over_cap(ctx: &CtxInner) -> bool {
    let cap = RECORD_CAP.with(|c| c.get());
    if cap != 0 && ctx.records.load(R) >= cap {
        ctx.dropped.fetch_add(1, R);
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// Per-thread lane stack.

struct LaneFrame {
    lane: Arc<LiveLane>,
    ctx: Arc<CtxInner>,
    /// Re-entry count: opening a lane scope whose key matches the current
    /// top reuses the buffer instead of nesting, so one thread's records
    /// for a lane always flush as a single in-order batch.
    depth: usize,
}

thread_local! {
    static LANES: RefCell<Vec<LaneFrame>> = const { RefCell::new(Vec::new()) };
}

fn emit(rec: Record) {
    let t0 = Instant::now();
    with_current(|ctx| {
        let weight = rec.weight();
        LANES.with(|l| {
            let lanes = l.borrow();
            match lanes.last() {
                Some(frame) if Arc::ptr_eq(&frame.ctx, ctx) => {
                    frame
                        .lane
                        .records
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(rec);
                }
                // No lane open on this thread (for this context): flush
                // straight to the store as an orphan record.
                _ => ctx.flush_batch(
                    orphan_lane(),
                    "untracked".to_owned(),
                    ctx.epoch.load(R),
                    vec![rec],
                ),
            }
        });
        ctx.records.fetch_add(1, R);
        ctx.bytes.fetch_add(weight, R);
        ctx.trace_ns.fetch_add(t0.elapsed().as_nanos() as u64, R);
    });
}

thread_local! {
    /// Suppression depth; see [`suppress`]. Only consulted after the
    /// `ACTIVE` load succeeds, so the tracing-off fast path stays a
    /// single relaxed atomic load.
    static SUPPRESSED: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Whether a capture is in progress in the current thread's context and
/// the thread is not inside a [`suppress`] scope. When no capture is
/// running anywhere in the process this is a single relaxed atomic load
/// — the entire cost of the subsystem.
pub fn enabled() -> bool {
    ACTIVE.load(R) != 0
        && SUPPRESSED.with(|s| s.get()) == 0
        && with_current(|ctx| ctx.enabled.load(R))
}

/// Mutes recording on the current thread until the guard drops. Used
/// around internal re-runs of instrumented code — e.g. the schedule
/// planner's dry-run simulations — whose records would otherwise pollute
/// (and, for the simulator's per-processor timelines, de-monotonize) the
/// capture. Nests; only affects the calling thread.
pub fn suppress() -> SuppressGuard {
    SUPPRESSED.with(|s| s.set(s.get() + 1));
    SuppressGuard { _priv: () }
}

/// Re-enables recording on the current thread when dropped.
pub struct SuppressGuard {
    _priv: (),
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// Starts a capture in the *default context*: clears its store and
/// re-anchors its clock. Callers that may run concurrently against the
/// default context (tests) must serialize captures themselves; code
/// that needs concurrent captures uses per-session [`ObsContext`]s.
pub fn start_capture() {
    default_ctx().start_capture();
}

/// Stops the default context's capture and returns the merged trace.
/// Lane buffers still open on any thread are drained in lane-key order
/// (their guards then close over empty buffers).
pub fn finish_capture() -> Trace {
    default_ctx().finish_capture()
}

/// Opens a lane scope on the current thread: records emitted until the
/// guard drops belong to `key`. Re-opening the current top key reuses the
/// buffer (see [`LaneKey`]); the buffer is flushed to the owning
/// context's store when the outermost guard for the key drops, or at
/// `finish_capture`, whichever comes first.
pub fn lane(key: LaneKey, label: impl Into<String>) -> LaneGuard {
    if !enabled() {
        return LaneGuard { armed: false };
    }
    with_current(|ctx| {
        LANES.with(|l| {
            let mut lanes = l.borrow_mut();
            let cur_epoch = ctx.epoch.load(R);
            if let Some(top) = lanes.last_mut() {
                if top.lane.key == key && Arc::ptr_eq(&top.ctx, ctx) && top.lane.epoch == cur_epoch
                {
                    top.depth += 1;
                    return;
                }
            }
            let lane = Arc::new(LiveLane {
                key,
                label: label.into(),
                epoch: cur_epoch,
                records: Mutex::new(Vec::new()),
            });
            ctx.live
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&lane));
            lanes.push(LaneFrame {
                lane,
                ctx: Arc::clone(ctx),
                depth: 0,
            });
        });
    });
    LaneGuard { armed: true }
}

/// Closes its lane scope on drop.
pub struct LaneGuard {
    armed: bool,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let frame = LANES.with(|l| {
            let mut lanes = l.borrow_mut();
            if let Some(top) = lanes.last_mut() {
                if top.depth > 0 {
                    top.depth -= 1;
                    return None;
                }
            }
            lanes.pop()
        });
        let Some(frame) = frame else { return };
        // Unregister from the context's live list (finish_capture may
        // have already drained and dropped it).
        {
            let mut live = frame.ctx.live.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pos) = live.iter().position(|l| Arc::ptr_eq(l, &frame.lane)) {
                live.swap_remove(pos);
            }
        }
        let records =
            std::mem::take(&mut *frame.lane.records.lock().unwrap_or_else(|e| e.into_inner()));
        frame.ctx.flush_batch(
            frame.lane.key.clone(),
            frame.lane.label.clone(),
            frame.lane.epoch,
            records,
        );
    }
}

/// Begins a span; the guard emits the matching end record on drop.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Begins a span with fields, building them only when tracing is on.
pub fn span_f(
    name: &'static str,
    fields: impl FnOnce() -> Vec<(&'static str, Value)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    span_with(name, fields())
}

fn span_with(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, armed: false };
    }
    // A span whose begin record is dropped by the cap stays unarmed, so
    // its end record is dropped with it and lanes stay balanced.
    if with_current(|ctx| over_cap(ctx)) {
        return SpanGuard { name, armed: false };
    }
    let ts_ns = with_current(|ctx| ctx.now_ns());
    emit(Record {
        phase: Phase::Begin,
        name,
        ts_ns,
        det: true,
        fields,
    });
    SpanGuard { name, armed: true }
}

/// Ends its span on drop (balanced even on early return or panic).
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            let ts_ns = with_current(|ctx| ctx.now_ns());
            emit(Record {
                phase: Phase::End,
                name: self.name,
                ts_ns,
                det: true,
                fields: Vec::new(),
            });
        }
    }
}

fn instant(name: &'static str, det: bool, fields: Vec<(&'static str, Value)>) {
    if with_current(|ctx| over_cap(ctx)) {
        return;
    }
    let ts_ns = with_current(|ctx| ctx.now_ns());
    emit(Record {
        phase: Phase::Instant,
        name,
        ts_ns,
        det,
        fields,
    });
}

/// Emits a deterministic instant event.
pub fn event(name: &'static str, fields: Vec<(&'static str, Value)>) {
    if enabled() {
        instant(name, true, fields);
    }
}

/// Emits a deterministic instant event, building fields lazily.
pub fn event_f(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Value)>) {
    if enabled() {
        instant(name, true, fields());
    }
}

/// Emits a diagnostic event whose presence may depend on scheduling or
/// cache state; excluded from [`Trace::deterministic_view`].
pub fn event_nondet(name: &'static str, fields: Vec<(&'static str, Value)>) {
    if enabled() {
        instant(name, false, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Captures on the default context are process-wide; serialize the
    /// tests that use the free-function API.
    static CAPTURE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!ObsContext::default_context().is_capturing());
        let _lane = lane(main_lane(), "main");
        let _span = span("nothing");
        event("nothing", vec![field("k", 1u64)]);
        // No capture was started: nothing may have been recorded.
        start_capture();
        let t = finish_capture();
        assert!(t.is_empty());
    }

    #[test]
    fn lanes_merge_sorted_and_spans_balance() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        start_capture();
        {
            let _lane = lane(main_lane(), "main");
            let _s = span_f("compile", || vec![field("jobs", 2u64)]);
            {
                let _rl = lane(read_lane(1, 0), "read 1/0");
                let _rs = span("read");
                event("prov.pass", vec![field("pass", "self_reuse")]);
            }
            {
                let _rl = lane(read_lane(0, 0), "read 0/0");
                let _rs = span("read");
            }
            event_nondet("compile.workers", vec![field("workers", 4u64)]);
        }
        let t = finish_capture();
        // Lanes sorted by key: main [0] first, then read lanes in textual
        // order regardless of emission order.
        let labels: Vec<&str> = t.lanes.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, vec!["main", "read 0/0", "read 1/0"]);
        // Begin/End balance per lane.
        for lane in &t.lanes {
            let mut depth = 0i64;
            for r in &lane.records {
                match r.phase {
                    Phase::Begin => depth += 1,
                    Phase::End => depth -= 1,
                    Phase::Instant => {}
                }
                assert!(depth >= 0, "unbalanced in {}", lane.label);
            }
            assert_eq!(depth, 0, "unbalanced in {}", lane.label);
        }
        // The nondet event is excluded from the deterministic view.
        let view = t.deterministic_view();
        assert!(
            view.iter().all(|l| !l.contains("compile.workers")),
            "{view:?}"
        );
        assert!(view.iter().any(|l| l.contains("pass=self_reuse")));
    }

    #[test]
    fn suppress_mutes_only_its_scope() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        start_capture();
        {
            let _lane = lane(main_lane(), "main");
            event("kept.before", vec![]);
            {
                let _mute = suppress();
                assert!(!enabled());
                let _inner = suppress(); // nests
                drop(_inner);
                assert!(!enabled(), "outer suppression still active");
                event("muted", vec![]);
                let _s = span("muted.span");
            }
            assert!(enabled());
            event("kept.after", vec![]);
        }
        let t = finish_capture();
        let names: Vec<&str> = t.lanes[0].records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["kept.before", "kept.after"]);
    }

    #[test]
    fn same_key_lane_scopes_share_one_buffer() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        start_capture();
        {
            let _outer = lane(main_lane(), "main");
            event("a", vec![]);
            {
                let _inner = lane(main_lane(), "main");
                event("b", vec![]);
            }
            event("c", vec![]);
        }
        let t = finish_capture();
        let names: Vec<&str> = t.lanes[0].records.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["a", "b", "c"],
            "re-entry must preserve program order"
        );
    }

    #[test]
    fn worker_threads_merge_deterministically() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        let run = |workers: usize| {
            start_capture();
            {
                let _lane = lane(main_lane(), "main");
                let _s = span("compile");
                let jobs: Vec<usize> = (0..6).collect();
                if workers <= 1 {
                    for &j in &jobs {
                        let _rl = lane(read_lane(j, 0), format!("read {j}/0"));
                        event("job", vec![field("j", j)]);
                    }
                } else {
                    std::thread::scope(|scope| {
                        for chunk in jobs.chunks(jobs.len().div_ceil(workers)) {
                            scope.spawn(move || {
                                for &j in chunk {
                                    let _rl = lane(read_lane(j, 0), format!("read {j}/0"));
                                    event("job", vec![field("j", j)]);
                                }
                            });
                        }
                    });
                }
            }
            finish_capture().deterministic_view()
        };
        assert_eq!(
            run(1),
            run(3),
            "merged trace must not depend on worker count"
        );
    }

    /// Regression test for the capture-lifecycle race: a worker thread
    /// still holds an open lane buffer when `finish_capture` runs. The
    /// finish must drain the worker's records (they happened-before the
    /// finish), and records the worker emits *after* the finish must be
    /// discarded — not attached to the next capture.
    #[test]
    fn finish_drains_live_worker_lanes_and_discards_late_records() {
        let _g = CAPTURE.lock().unwrap_or_else(|e| e.into_inner());
        use std::sync::mpsc;
        start_capture();
        let (ready_tx, ready_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            let _rl = lane(read_lane(0, 0), "read 0/0");
            event("before.finish", vec![]);
            ready_tx.send(()).unwrap();
            // Wait until the main thread finished the capture, then emit
            // into the still-open lane.
            done_rx.recv().unwrap();
            event("after.finish", vec![]);
        });
        ready_rx.recv().unwrap();
        let t = finish_capture();
        let names: Vec<&str> = t.records().map(|(_, r)| r.name).collect();
        assert_eq!(
            names,
            vec!["before.finish"],
            "live worker lane must be drained"
        );
        done_tx.send(()).unwrap();
        worker.join().unwrap();
        // The late record must not leak into a fresh capture.
        start_capture();
        let t2 = finish_capture();
        assert!(t2.is_empty(), "late records must be discarded, got {t2:?}");
    }

    /// Two contexts capturing at once on different threads stay fully
    /// isolated, and neither interferes with the default context.
    #[test]
    fn contexts_isolate_concurrent_captures() {
        let solo = |tag: u64| {
            let ctx = ObsContext::new();
            ctx.start_capture();
            {
                let _g = ctx.install();
                let _lane = lane(main_lane(), format!("main {tag}"));
                let _s = span("compile");
                event("tagged", vec![field("tag", tag)]);
            }
            ctx.finish_capture().deterministic_view()
        };
        let solo_a = solo(1);
        let solo_b = solo(2);
        let (view_a, view_b) = std::thread::scope(|scope| {
            let a = scope.spawn(|| solo(1));
            let b = scope.spawn(|| solo(2));
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(view_a, solo_a);
        assert_eq!(view_b, solo_b);
        assert_ne!(view_a, view_b);
    }

    #[test]
    fn install_guard_restores_previous_context() {
        let a = ObsContext::new();
        let b = ObsContext::new();
        assert!(ObsContext::current().same_context(&ObsContext::default_context()));
        {
            let _ga = a.install();
            assert!(ObsContext::current().same_context(&a));
            {
                let _gb = b.install();
                assert!(ObsContext::current().same_context(&b));
            }
            assert!(ObsContext::current().same_context(&a));
        }
        assert!(ObsContext::current().same_context(&ObsContext::default_context()));
    }

    #[test]
    fn overhead_counts_records_and_cap_drops() {
        let ctx = ObsContext::new();
        ctx.start_capture();
        {
            let _g = ctx.install();
            let _lane = lane(main_lane(), "main");
            let _cap = push_record_cap(3);
            event("a", vec![field("k", "payload")]);
            event("b", vec![]);
            event("c", vec![]); // cap reached after this one
            event("d", vec![]); // dropped
            event("e", vec![]); // dropped
        }
        let over = ctx.overhead();
        let t = ctx.finish_capture();
        assert_eq!(t.len(), 3, "{t:?}");
        assert_eq!(over.records, 3);
        assert_eq!(over.dropped, 2);
        assert!(over.bytes > 0);
        let names: Vec<&str> = t.lanes[0].records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn capped_spans_stay_balanced() {
        let ctx = ObsContext::new();
        ctx.start_capture();
        {
            let _g = ctx.install();
            let _lane = lane(main_lane(), "main");
            let _cap = push_record_cap(3);
            let _outer = span("outer"); // begin = record 1
            {
                let _a = span("a"); // begin = 2, end = 3 (cap reached)
            }
            {
                let _b = span("b"); // begin dropped -> end dropped too
            }
            event("tail", vec![]); // dropped
        }
        let t = ctx.finish_capture();
        for lane in &t.lanes {
            let mut depth = 0i64;
            for r in &lane.records {
                match r.phase {
                    Phase::Begin => depth += 1,
                    Phase::End => depth -= 1,
                    Phase::Instant => {}
                }
                assert!(depth >= 0, "unbalanced: {t:?}");
            }
            // "outer" begin was kept; its end is emitted past the cap to
            // keep the lane balanced.
            assert_eq!(depth, 0, "unbalanced: {t:?}");
        }
        assert_eq!(ctx.overhead().dropped, 2, "b's begin and the tail event");
    }

    #[test]
    fn context_registry_is_scoped() {
        let a = ObsContext::new();
        let b = ObsContext::new();
        a.with_registry(|r| r.add_counter("dmc_test_total", "test counter", &[], 1));
        let ra = a.with_registry(|r| r.render());
        let rb = b.with_registry(|r| r.render());
        assert!(ra.contains("dmc_test_total 1"), "{ra}");
        assert!(!rb.contains("dmc_test_total"), "{rb}");
    }
}
