//! Batched feasibility for uniformly-generated constraint families.
//!
//! Communication generation and dataflow analysis frequently test many
//! systems that share one coefficient matrix and differ only in constant
//! offsets — the pieces of a lexicographic split, the residue of a
//! polyhedral subtraction, the per-reference sets of a uniformly-generated
//! reference family (same access matrix, shifted constants). Answering
//! each with an independent solver query repeats the same Fourier–Motzkin
//! work per member.
//!
//! [`batch_feasibility`] answers a whole batch at once. Members are
//! grouped by **matrix signature** (the set of `(kind, coefficient-row)`
//! pairs with constants stripped from inequalities); within a group the
//! members form a lattice under syntactic subset dominance:
//!
//! > With identical signatures, member `A` is a subset of member `B`
//! > exactly when every inequality constant of `A` is ≤ the corresponding
//! > constant of `B` (a smaller constant in `e + c >= 0` is tighter) and
//! > the equality rows agree.
//!
//! One solver answer then propagates for free: a **feasible** member
//! proves every superset feasible (the witness point transfers), an
//! **infeasible** member refutes every subset (a subset of an empty set is
//! empty). Each group is answered in two phases:
//!
//! 1. **Envelope query** — the family's pointwise-loosest system (the
//!    per-row maximum constant) contains every member, so a single
//!    parametric query can refute the whole family at once. When the
//!    envelope coincides with an actual member the query is free; a
//!    synthetic envelope is only worth constructing for groups of three
//!    or more (an infeasible answer then saves at least two queries,
//!    a feasible one wastes exactly one).
//! 2. **Dominance chain** — remaining members are solved tightest
//!    (lexicographically smallest constants) first; every feasible answer
//!    propagates to its unresolved supersets before the next solve. Only
//!    `Unknown` answers never propagate.
//!
//! Answers are exactly the per-query answers whenever the solver is exact
//! (no `Unknown`): propagation only transports definite answers along
//! sound set inclusions. Work accounting stays deterministic — grouping,
//! ordering, and propagation depend only on the input systems, never on
//! thread interleaving or memo-cache state — so ledger charges for a
//! batched call replay identically across runs. Queries the batch did not
//! need to run are counted in [`PolyStats::batch_saved`](crate::PolyStats).

use std::collections::BTreeMap;

use crate::{stats, ConstraintKind, Feasibility, PolyError, Polyhedron};

/// The dominance-comparable form of one member: equality rows in full,
/// inequality rows reduced to the tightest constant per coefficient row
/// (`e + c1 >= 0` implies `e + c2 >= 0` for `c1 <= c2`, so only the
/// minimum binds).
struct Member {
    eq_rows: Vec<(Vec<i128>, i128)>,
    ge: BTreeMap<Vec<i128>, i128>,
}

/// A family key: space arity, the full equality rows, and the inequality
/// coefficient rows with constants stripped.
type Signature = (usize, Vec<(Vec<i128>, i128)>, Vec<Vec<i128>>);

impl Member {
    fn of(p: &Polyhedron) -> Member {
        let mut eq_rows: Vec<(Vec<i128>, i128)> = Vec::new();
        let mut ge: BTreeMap<Vec<i128>, i128> = BTreeMap::new();
        for c in p.constraints() {
            let coeffs = c.expr().coeffs().to_vec();
            let k = c.expr().constant_term();
            match c.kind() {
                ConstraintKind::Eq => eq_rows.push((coeffs, k)),
                ConstraintKind::Ge => {
                    ge.entry(coeffs)
                        .and_modify(|m| *m = (*m).min(k))
                        .or_insert(k);
                }
            }
        }
        eq_rows.sort();
        Member { eq_rows, ge }
    }

    /// The [`Signature`] of this member. Two members with equal
    /// signatures differ only in inequality constants.
    fn signature(&self, space_len: usize) -> Signature {
        (
            space_len,
            self.eq_rows.clone(),
            self.ge.keys().cloned().collect(),
        )
    }

    /// Whether `self ⊆ other` as integer sets: identical signature assumed,
    /// so the inclusion holds exactly when every inequality constant of
    /// `self` is at most the corresponding constant of `other`.
    fn subset_of(&self, other: &Member) -> bool {
        self.ge.values().zip(other.ge.values()).all(|(a, b)| a <= b)
    }
}

/// Integer feasibility of every system in `polys`, exploiting shared
/// coefficient matrices: one solver query can resolve a whole dominance
/// chain of a uniformly-generated family. `out[i]` corresponds to
/// `polys[i]`. See the [module docs](self) for the grouping and
/// propagation rules.
///
/// # Errors
///
/// Returns [`PolyError::Overflow`] if any member's query overflows.
pub fn batch_feasibility(polys: &[Polyhedron]) -> Result<Vec<Feasibility>, PolyError> {
    let members: Vec<Member> = polys.iter().map(Member::of).collect();
    // Group indices by signature (BTreeMap: deterministic group order).
    type Sig = (usize, Vec<(Vec<i128>, i128)>, Vec<Vec<i128>>);
    let mut groups: BTreeMap<Sig, Vec<usize>> = BTreeMap::new();
    for (i, m) in members.iter().enumerate() {
        groups
            .entry(m.signature(polys[i].space().len()))
            .or_default()
            .push(i);
    }

    let mut out: Vec<Option<Feasibility>> = vec![None; polys.len()];
    for indices in groups.values() {
        // Tightest members first (lexicographic on the constant vector);
        // pointwise dominance implies lexicographic order, so a member's
        // supersets always come later in the chain.
        let vector = |i: usize| -> Vec<i128> { members[i].ge.values().copied().collect() };
        let mut order = indices.clone();
        order.sort_by(|&a, &b| vector(a).cmp(&vector(b)).then(a.cmp(&b)));

        // Phase 1: the envelope — per-row maximum constants — contains
        // every member, so its infeasibility refutes the whole group.
        let envelope: Vec<i128> = order
            .iter()
            .map(|&i| vector(i))
            .fold(vec![i128::MIN; members[order[0]].ge.len()], |acc, v| {
                acc.iter().zip(&v).map(|(a, b)| *a.max(b)).collect()
            });
        let is_member_envelope = vector(*order.last().expect("nonempty group")) == envelope;
        let envelope_f = if is_member_envelope {
            // The loosest member is the envelope: query it directly.
            let i = *order.last().expect("nonempty group");
            let f = polys[i].integer_feasibility()?;
            out[i] = Some(f);
            f
        } else if order.len() >= 3 {
            // Synthetic envelope: worth one speculative query only when an
            // infeasible answer would save at least two member queries.
            let mut env = Polyhedron::universe(polys[order[0]].space().clone());
            for (coeffs, k) in &members[order[0]].eq_rows {
                env.add(crate::Constraint::eq(crate::LinExpr::from_coeffs(
                    coeffs.clone(),
                    *k,
                )));
            }
            for (coeffs, k) in members[order[0]].ge.keys().zip(&envelope) {
                env.add(crate::Constraint::ge(crate::LinExpr::from_coeffs(
                    coeffs.clone(),
                    *k,
                )));
            }
            env.integer_feasibility()?
        } else {
            Feasibility::Unknown
        };
        if envelope_f == Feasibility::Infeasible {
            for &i in &order {
                if out[i].is_none() {
                    out[i] = Some(Feasibility::Infeasible);
                    stats::count_batch_saved();
                }
            }
            continue;
        }

        // Phase 2: dominance chain from the tight end; feasible answers
        // propagate to unresolved supersets (infeasible ones to unresolved
        // subsets — only exact duplicates, given the solve order).
        for &i in &order {
            if out[i].is_some() {
                continue;
            }
            let f = polys[i].integer_feasibility()?;
            out[i] = Some(f);
            if f == Feasibility::Unknown {
                continue;
            }
            for &j in &order {
                if out[j].is_some() {
                    continue;
                }
                let propagated = match f {
                    // A witness of the subset lies in every superset.
                    Feasibility::Feasible => members[i].subset_of(&members[j]),
                    // A subset of an empty set is empty.
                    Feasibility::Infeasible => members[j].subset_of(&members[i]),
                    Feasibility::Unknown => false,
                };
                if propagated {
                    out[j] = Some(f);
                    stats::count_batch_saved();
                }
            }
        }
    }
    Ok(out
        .into_iter()
        .map(|f| f.expect("every member resolved"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, DimKind, LinExpr, Space};
    use std::sync::Mutex;

    /// `batch_saved` is process-global; tests that assert on its delta
    /// serialize here so concurrent batch tests don't inflate each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn space(n: usize) -> Space {
        let mut s = Space::new();
        for d in 0..n {
            s.add_dim(format!("x{d}"), DimKind::Index);
        }
        s
    }

    /// A box `0 <= x_d <= hi_d` shifted by per-member constants: the
    /// canonical uniformly-generated family.
    fn shifted_box(n: usize, lo: &[i128], hi: &[i128]) -> Polyhedron {
        let mut p = Polyhedron::universe(space(n));
        for d in 0..n {
            let mut l = LinExpr::var(n, d);
            l.set_constant(-lo[d]);
            p.add(Constraint::ge(l));
            let mut h = LinExpr::var(n, d).scaled(-1);
            h.set_constant(hi[d]);
            p.add(Constraint::ge(h));
        }
        p
    }

    #[test]
    fn family_members_share_one_query_per_chain() {
        // Five nested boxes: [0,k] x [0,k] for k = 0..4 — the loosest
        // member doubles as the envelope (one query), then the tightest
        // member's feasibility resolves the middle of the chain.
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let polys: Vec<Polyhedron> = (0..5).map(|k| shifted_box(2, &[0, 0], &[k, k])).collect();
        let before = stats::snapshot();
        let out = batch_feasibility(&polys).unwrap();
        let d = stats::snapshot().since(&before);
        assert!(out.iter().all(|f| *f == Feasibility::Feasible));
        // Two solver queries (envelope k=4, tightest k=0); k=1..3 ride on
        // the tight member's witness.
        assert_eq!(d.batch_saved, 3, "two solves, three propagated");
    }

    #[test]
    fn infeasible_propagates_downward() {
        // [0, hi] with hi = -3..1: hi < 0 is empty. The envelope (hi=1)
        // is feasible, so the empty members are each solved — emptiness
        // never certifies a superset.
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let polys: Vec<Polyhedron> = (-3..2).map(|k| shifted_box(1, &[0], &[k])).collect();
        let out = batch_feasibility(&polys).unwrap();
        for (k, f) in (-3..2).zip(&out) {
            let expect = if k < 0 {
                Feasibility::Infeasible
            } else {
                Feasibility::Feasible
            };
            assert_eq!(*f, expect, "hi={k}");
        }
        // And the reverse chain: querying a superset that is empty
        // refutes all its subsets in one propagation sweep.
        let tight = shifted_box(1, &[5], &[0]); // 5 <= x <= 0: empty
        let tighter = shifted_box(1, &[7], &[0]);
        let before = stats::snapshot();
        let out = batch_feasibility(&[tighter, tight]).unwrap();
        let d = stats::snapshot().since(&before);
        assert_eq!(out, vec![Feasibility::Infeasible; 2]);
        assert_eq!(
            d.batch_saved, 1,
            "the superset's emptiness covers the subset"
        );
    }

    #[test]
    fn mixed_signatures_group_independently() {
        let a = shifted_box(2, &[0, 0], &[3, 3]);
        let mut b = shifted_box(2, &[0, 0], &[3, 3]);
        // An equality makes the signature differ: no cross-propagation.
        b.add(Constraint::eq(LinExpr::from_coeffs(vec![1, -1], 0)));
        let c = shifted_box(1, &[0], &[3]);
        let out = batch_feasibility(&[a, b, c]).unwrap();
        assert_eq!(out, vec![Feasibility::Feasible; 3]);
    }

    /// Differential property: over random shifted-box-with-diagonals
    /// families, the batch answers equal independent per-query answers.
    #[test]
    fn differential_batch_equals_per_query() {
        // xorshift64* — deterministic in-file PRNG, no dependencies.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545f4914f6cdd1d);
            state
        };
        for _round in 0..40 {
            let n = 1 + (rng() % 3) as usize;
            let fam = 2 + (rng() % 4) as usize;
            // One shared matrix per round: box rows plus one random
            // diagonal row; members get independent random constants.
            let diag: Vec<i128> = (0..n).map(|_| (rng() % 5) as i128 - 2).collect();
            let polys: Vec<Polyhedron> = (0..fam)
                .map(|_| {
                    let lo: Vec<i128> = (0..n).map(|_| (rng() % 7) as i128 - 3).collect();
                    let hi: Vec<i128> = (0..n).map(|_| (rng() % 7) as i128 - 3).collect();
                    let mut p = shifted_box(n, &lo, &hi);
                    let mut row = LinExpr::from_coeffs(diag.clone(), 0);
                    row.set_constant((rng() % 9) as i128 - 4);
                    p.add(Constraint::ge(row));
                    p
                })
                .collect();
            let batched = batch_feasibility(&polys).unwrap();
            for (p, b) in polys.iter().zip(&batched) {
                let solo = p.integer_feasibility().unwrap();
                assert_eq!(solo, *b, "batch diverged from per-query on {p}");
            }
        }
    }
}
