//! Per-thread memoization of the expensive polyhedral queries.
//!
//! Every pipeline stage (Last Write Trees, communication sets, the §5.1
//! negation test, scanning) bottoms out in the same two primitives —
//! integer feasibility and Fourier–Motzkin projection — and the pipeline
//! re-asks the *same* queries many times: per constraint, per statement,
//! per read. This module caches their answers.
//!
//! Two kinds of key are used:
//!
//! * **Feasibility** is order-insensitive (the answer depends only on the
//!   constraint *set*), so it is keyed by the sorted [`CanonicalKey`] —
//!   maximizing hit rate across differently-built but equal systems.
//! * **Projection and redundancy removal** return constraint *lists* whose
//!   order feeds downstream code generation, so they are keyed by the exact
//!   constraint sequence. A hit therefore returns bit-for-bit the value the
//!   uncached computation would produce, keeping cached and uncached
//!   pipelines byte-identical.
//!
//! Caches are thread-local (no locks on the hot path; each worker of the
//! parallel pipeline warms its own), bounded (cleared wholesale past a size
//! cap), and invalidated whenever an engine knob changes (see
//! [`stats`](crate::stats)'s epoch).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::polyhedron::Feasibility;
use crate::stats;
use crate::Constraint;

/// An order-insensitive, hashable fingerprint of a constraint system:
/// the space arity plus the normalized constraint rows, sorted.
///
/// Two polyhedra with equal keys describe the same integer set (dimension
/// names are irrelevant to the arithmetic). Obtained from
/// [`Polyhedron::canonical_key`](crate::Polyhedron::canonical_key).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey {
    pub(crate) dims: usize,
    pub(crate) contradiction: bool,
    /// `(is_eq, coefficients, constant)` rows in sorted order.
    pub(crate) rows: Vec<(bool, Vec<i128>, i128)>,
}

/// Exact-sequence key: arity + the constraint list in construction order.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct SeqKey {
    pub(crate) dims: usize,
    pub(crate) contradiction: bool,
    pub(crate) rows: Vec<Constraint>,
}

/// A cached result polyhedron, stored space-free (the caller re-attaches
/// its own space; projection and redundancy removal never change spaces).
#[derive(Clone)]
pub(crate) struct CachedPoly {
    pub(crate) cons: Vec<Constraint>,
    pub(crate) contradiction: bool,
    /// Charged work units of the original (miss) computation, replayed by
    /// the [`ledger`](crate::ledger) on every hit so charged work stays
    /// cache-state-independent.
    pub(crate) charged: u64,
}

/// Entries per thread-local map before it is dropped wholesale.
const CAP: usize = 1 << 14;

struct Store<K, V> {
    epoch: u64,
    map: HashMap<K, V>,
}

impl<K: std::hash::Hash + Eq, V: Clone> Store<K, V> {
    fn new() -> Self {
        Store {
            epoch: stats::epoch(),
            map: HashMap::new(),
        }
    }

    fn sync(&mut self) {
        let e = stats::epoch();
        if self.epoch != e {
            self.epoch = e;
            self.map.clear();
        }
    }

    fn get(&mut self, k: &K) -> Option<V> {
        self.sync();
        self.map.get(k).cloned()
    }

    fn put(&mut self, k: K, v: V) {
        self.sync();
        if self.map.len() >= CAP {
            self.map.clear();
        }
        self.map.insert(k, v);
    }
}

thread_local! {
    static FEAS: RefCell<Store<CanonicalKey, (Feasibility, u64)>> = RefCell::new(Store::new());
    static PROJ: RefCell<Store<(SeqKey, Vec<usize>), CachedPoly>> = RefCell::new(Store::new());
    static REDUND: RefCell<Store<SeqKey, CachedPoly>> = RefCell::new(Store::new());
}

pub(crate) fn feas_get(k: &CanonicalKey) -> Option<(Feasibility, u64)> {
    FEAS.with(|c| c.borrow_mut().get(k))
}

pub(crate) fn feas_put(k: CanonicalKey, v: (Feasibility, u64)) {
    FEAS.with(|c| c.borrow_mut().put(k, v));
}

pub(crate) fn proj_get(k: &(SeqKey, Vec<usize>)) -> Option<CachedPoly> {
    PROJ.with(|c| c.borrow_mut().get(k))
}

pub(crate) fn proj_put(k: (SeqKey, Vec<usize>), v: CachedPoly) {
    PROJ.with(|c| c.borrow_mut().put(k, v));
}

pub(crate) fn redund_get(k: &SeqKey) -> Option<CachedPoly> {
    REDUND.with(|c| c.borrow_mut().get(k))
}

pub(crate) fn redund_put(k: SeqKey, v: CachedPoly) {
    REDUND.with(|c| c.borrow_mut().put(k, v));
}

/// Drops this thread's memo caches (counters are untouched). Mostly useful
/// for benchmarking cold-cache behavior.
pub fn clear_thread_caches() {
    FEAS.with(|c| c.borrow_mut().map.clear());
    PROJ.with(|c| c.borrow_mut().map.clear());
    REDUND.with(|c| c.borrow_mut().map.clear());
}
