//! Deterministic, versioned byte codecs for stage artifacts.
//!
//! The persistent artifact store (`dmc-store`) keeps compilation-stage
//! outputs on disk, keyed by the same structural fingerprints the
//! in-memory session store uses. That only works if serialization is a
//! *pure function of the value*: two equal artifacts must encode to the
//! same bytes on every host, every run, every thread count — the store
//! re-fingerprints payloads on load and treats any mismatch as
//! corruption. The discipline enforced here:
//!
//! - **Fixed field order.** Every [`Codec`] impl writes struct fields in
//!   declaration order and enum variants as a `u8` discriminant followed
//!   by the payload. No maps are serialized in iteration order unless
//!   the container itself is ordered.
//! - **Length-prefixed sequences.** Every `Vec`/`String` starts with its
//!   `u64` element/byte count, so truncation is always detectable (a
//!   short payload fails with [`CodecError::Truncated`], never decodes
//!   to a shorter value).
//! - **Fixed-width little-endian integers.** `u64`/`i128` encode as 8/16
//!   LE bytes; `f64` as its IEEE bit pattern (`to_bits`), so `-0.0` and
//!   NaN payloads round-trip bit-exactly.
//! - **Schema-tagged payloads.** The store layer prepends a codec
//!   version and stage tag to every payload (see `dmc-core`'s artifact
//!   module); a version bump invalidates every cached artifact rather
//!   than risking a silent misparse.
//!
//! Decoding is total: every error path returns [`CodecError`], never
//! panics, because the input may be a corrupted or truncated disk file.

use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::LinExpr;
use crate::polyhedron::Polyhedron;
use crate::space::{Dim, DimKind, Space};

/// Why a payload failed to decode. All variants are misses from the
/// store's point of view — a corrupt artifact is recomputed, never
/// trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// A tag, length or reference was out of range for the schema.
    Invalid(&'static str),
    /// The value decoded but bytes remained — the payload cannot have
    /// been produced by `encode` for this type.
    Trailing(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "payload truncated: needed {need} byte(s), had {have}")
            }
            CodecError::Invalid(what) => write!(f, "invalid payload: {what}"),
            CodecError::Trailing(n) => write!(f, "{n} trailing byte(s) after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A byte-stream encoder. Append-only; the writer discipline (field
/// order, length prefixes) lives in the [`Codec`] impls.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Fixed-width little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize`, as `u64` (the codec is host-width-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Fixed-width little-endian `i128`.
    pub fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// An `f64` as its IEEE-754 bit pattern — bit-exact round-trips,
    /// including NaN payloads and signed zero.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A UTF-8 string: `u64` byte length, then the bytes.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A byte-stream decoder over a borrowed payload. Every read is
/// bounds-checked and returns [`CodecError`] on under- or over-run.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the payload is exhausted.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Fixed-width little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A `usize` encoded as `u64`; rejects values beyond the host width
    /// or beyond the remaining payload when used as a length.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or overflow.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// A sequence length: like [`Dec::usize`], but additionally bounded
    /// by the remaining payload (each element needs ≥ 1 byte), so a
    /// corrupted length cannot trigger a huge allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or an impossible length.
    pub fn seq_len(&mut self) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Fixed-width little-endian `i128`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 16 bytes remain.
    pub fn i128(&mut self) -> Result<i128, CodecError> {
        let b = self.take(16)?;
        Ok(i128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    /// A bool byte; anything but 0/1 is invalid.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte out of range")),
        }
    }

    /// An `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.seq_len()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::Invalid("string is not UTF-8"))
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::Trailing`] when bytes remain.
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::Trailing(n)),
        }
    }
}

/// A deterministic byte codec: `decode(encode(v)) == v` and
/// `encode(decode(bytes)) == bytes` for every `bytes` produced by
/// `encode`. Implementations must write fields in a fixed order and
/// must not consult any ambient state.
pub trait Codec: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, e: &mut Enc);

    /// Decodes one value, consuming exactly the bytes `encode` wrote.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated, malformed or out-of-range payloads.
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value to a standalone byte vector.
pub fn encode_to_vec<T: Codec>(v: &T) -> Vec<u8> {
    let mut e = Enc::new();
    v.encode(&mut e);
    e.into_bytes()
}

/// Decodes a standalone byte vector, requiring full consumption.
///
/// # Errors
///
/// [`CodecError`] on any malformation, including trailing bytes.
pub fn decode_from_slice<T: Codec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut d = Dec::new(bytes);
    let v = T::decode(&mut d)?;
    d.finish()?;
    Ok(v)
}

impl Codec for u64 {
    fn encode(&self, e: &mut Enc) {
        e.u64(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.u64()
    }
}

impl Codec for usize {
    fn encode(&self, e: &mut Enc) {
        e.usize(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.usize()
    }
}

impl Codec for i128 {
    fn encode(&self, e: &mut Enc) {
        e.i128(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.i128()
    }
}

impl Codec for bool {
    fn encode(&self, e: &mut Enc) {
        e.bool(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.bool()
    }
}

impl Codec for String {
    fn encode(&self, e: &mut Enc) {
        e.str(self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        d.str()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, e: &mut Enc) {
        e.usize(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let n = d.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, e: &mut Enc) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            _ => Err(CodecError::Invalid("Option tag out of range")),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, e: &mut Enc) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

// ---------------------------------------------------------------------------
// Engine types. A polyhedron serializes as (space, constraints,
// contradiction flag); constraints are stored exactly as `constraints()`
// holds them — already normalized and deduplicated — and reassembled via
// `Polyhedron::from_parts`, which trusts them verbatim, so the re-encoded
// bytes are identical and no normalization pass runs on load.

impl Codec for DimKind {
    fn encode(&self, e: &mut Enc) {
        e.u8(match self {
            DimKind::Index => 0,
            DimKind::Param => 1,
            DimKind::Proc => 2,
            DimKind::Array => 3,
            DimKind::Aux => 4,
        });
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => DimKind::Index,
            1 => DimKind::Param,
            2 => DimKind::Proc,
            3 => DimKind::Array,
            4 => DimKind::Aux,
            _ => return Err(CodecError::Invalid("DimKind tag out of range")),
        })
    }
}

impl Codec for Dim {
    fn encode(&self, e: &mut Enc) {
        e.str(self.name());
        self.kind().encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let name = d.str()?;
        let kind = DimKind::decode(d)?;
        Ok(Dim::new(name, kind))
    }
}

impl Codec for Space {
    fn encode(&self, e: &mut Enc) {
        e.usize(self.len());
        for dim in self.iter() {
            dim.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let n = d.seq_len()?;
        let mut dims = Vec::with_capacity(n);
        for _ in 0..n {
            dims.push(Dim::decode(d)?);
        }
        // `Space::add_dim` panics on duplicate names; a corrupted payload
        // must surface as an error instead.
        for i in 1..dims.len() {
            if dims[..i].iter().any(|p: &Dim| p.name() == dims[i].name()) {
                return Err(CodecError::Invalid("duplicate dimension name"));
            }
        }
        Ok(Space::from_dims(
            dims.iter().map(|d| (d.name().to_owned(), d.kind())),
        ))
    }
}

impl Codec for LinExpr {
    fn encode(&self, e: &mut Enc) {
        e.usize(self.len());
        for &c in self.coeffs() {
            e.i128(c);
        }
        e.i128(self.constant_term());
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let n = d.seq_len()?;
        let mut coeffs = Vec::with_capacity(n);
        for _ in 0..n {
            coeffs.push(d.i128()?);
        }
        let constant = d.i128()?;
        Ok(LinExpr::from_coeffs(coeffs, constant))
    }
}

impl Codec for ConstraintKind {
    fn encode(&self, e: &mut Enc) {
        e.u8(match self {
            ConstraintKind::Eq => 0,
            ConstraintKind::Ge => 1,
        });
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => ConstraintKind::Eq,
            1 => ConstraintKind::Ge,
            _ => return Err(CodecError::Invalid("ConstraintKind tag out of range")),
        })
    }
}

impl Codec for Constraint {
    fn encode(&self, e: &mut Enc) {
        self.kind().encode(e);
        self.expr().encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let kind = ConstraintKind::decode(d)?;
        let expr = LinExpr::decode(d)?;
        Ok(match kind {
            ConstraintKind::Eq => Constraint::eq(expr),
            ConstraintKind::Ge => Constraint::ge(expr),
        })
    }
}

impl Codec for Polyhedron {
    fn encode(&self, e: &mut Enc) {
        self.space().encode(e);
        e.usize(self.constraints().len());
        for c in self.constraints() {
            c.encode(e);
        }
        e.bool(self.is_obviously_empty());
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let space = Space::decode(d)?;
        let n = d.seq_len()?;
        let mut cons = Vec::with_capacity(n);
        for _ in 0..n {
            let c = Constraint::decode(d)?;
            if c.expr().len() != space.len() {
                return Err(CodecError::Invalid("constraint space mismatch"));
            }
            cons.push(c);
        }
        let contradiction = d.bool()?;
        Ok(Polyhedron::from_parts(space, cons, contradiction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The repo's dependency-free PRNG (xorshift64*), as in the PR-1
    /// property suites.
    pub struct XorShift(u64);

    impl XorShift {
        pub fn new(seed: u64) -> Self {
            XorShift(seed.max(1))
        }
        pub fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        pub fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
        pub fn i128_small(&mut self) -> i128 {
            self.below(201) as i128 - 100
        }
    }

    fn random_space(rng: &mut XorShift) -> Space {
        let kinds = [
            DimKind::Index,
            DimKind::Param,
            DimKind::Proc,
            DimKind::Array,
            DimKind::Aux,
        ];
        let n = 1 + rng.below(6) as usize;
        Space::from_dims((0..n).map(|i| (format!("d{i}"), kinds[rng.below(5) as usize])))
    }

    fn random_linexpr(rng: &mut XorShift, n: usize) -> LinExpr {
        LinExpr::from_coeffs((0..n).map(|_| rng.i128_small()).collect(), rng.i128_small())
    }

    fn random_poly(rng: &mut XorShift) -> Polyhedron {
        let space = random_space(rng);
        let n = space.len();
        let mut p = Polyhedron::universe(space);
        for _ in 0..rng.below(6) {
            let e = random_linexpr(rng, n);
            let c = if rng.below(2) == 0 {
                Constraint::ge(e)
            } else {
                Constraint::eq(e)
            };
            p.add(c);
        }
        p
    }

    /// encode → decode → re-encode must be the identity on bytes and on
    /// values, for every engine type.
    #[test]
    fn engine_round_trips() {
        let mut rng = XorShift::new(0xDECAF);
        for _ in 0..200 {
            let p = random_poly(&mut rng);
            let bytes = encode_to_vec(&p);
            let back: Polyhedron = decode_from_slice(&bytes).expect("decodes");
            assert_eq!(back, p, "polyhedron value round-trip");
            assert_eq!(encode_to_vec(&back), bytes, "byte-identical re-encode");

            let n = 1 + rng.below(20) as usize;
            let e = random_linexpr(&mut rng, n);
            let bytes = encode_to_vec(&e);
            let back: LinExpr = decode_from_slice(&bytes).expect("decodes");
            assert_eq!(back, e);
            assert_eq!(encode_to_vec(&back), bytes);
        }
    }

    /// A `LinExpr` that spills past the inline buffer (> 12 coeffs) still
    /// round-trips byte-identically — the codec sees coefficients, not
    /// the storage representation.
    #[test]
    fn heap_linexpr_round_trips() {
        let e = LinExpr::from_coeffs((0..40).map(|i| i as i128 - 20).collect(), 7);
        let bytes = encode_to_vec(&e);
        let back: LinExpr = decode_from_slice(&bytes).expect("decodes");
        assert_eq!(back, e);
        assert_eq!(encode_to_vec(&back), bytes);
    }

    /// Every strict prefix of a valid payload fails to decode — length
    /// prefixes make truncation always detectable.
    #[test]
    fn truncation_always_detected() {
        let mut rng = XorShift::new(0xBEEF);
        let p = random_poly(&mut rng);
        let bytes = encode_to_vec(&p);
        for cut in 0..bytes.len() {
            assert!(
                decode_from_slice::<Polyhedron>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    /// Trailing garbage after a valid value is rejected.
    #[test]
    fn trailing_bytes_rejected() {
        let e = LinExpr::from_coeffs(vec![1, -2], 3);
        let mut bytes = encode_to_vec(&e);
        bytes.push(0);
        assert_eq!(
            decode_from_slice::<LinExpr>(&bytes),
            Err(CodecError::Trailing(1))
        );
    }

    /// A flipped bit either fails to decode or decodes to a different
    /// value whose re-encoding differs — it can never silently round-trip
    /// back to the original bytes at a different value.
    #[test]
    fn bit_flips_never_confuse_values() {
        let mut rng = XorShift::new(0xF00D);
        for _ in 0..40 {
            let p = random_poly(&mut rng);
            let bytes = encode_to_vec(&p);
            let pos = rng.below(bytes.len() as u64) as usize;
            let bit = 1u8 << rng.below(8);
            let mut flipped = bytes.clone();
            flipped[pos] ^= bit;
            match decode_from_slice::<Polyhedron>(&flipped) {
                Err(_) => {}
                Ok(q) => {
                    // Decoded fine: the value must differ (the flip landed
                    // in a payload field), and re-encoding must reproduce
                    // the flipped bytes, not the original.
                    assert_ne!(q, p, "bit flip produced an equal value");
                    assert_eq!(encode_to_vec(&q), flipped);
                }
            }
        }
    }

    /// Bool and Option tags reject out-of-range bytes.
    #[test]
    fn invalid_tags_rejected() {
        assert!(decode_from_slice::<bool>(&[2]).is_err());
        assert!(decode_from_slice::<Option<bool>>(&[9]).is_err());
        let mut e = Enc::new();
        e.u8(7);
        assert!(decode_from_slice::<DimKind>(&e.into_bytes()).is_err());
    }

    /// A corrupted length prefix cannot trigger a huge allocation: it is
    /// bounded by the remaining payload and fails as truncation.
    #[test]
    fn absurd_length_is_truncation() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let err = decode_from_slice::<Vec<u64>>(&e.into_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }), "{err:?}");
    }
}
