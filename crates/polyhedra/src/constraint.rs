//! Single affine constraints: `e >= 0` or `e == 0`.

use std::fmt;

use crate::num;
use crate::{LinExpr, PolyError, Space};

/// The comparison form of a [`Constraint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `expr == 0`.
    Eq,
    /// `expr >= 0`.
    Ge,
}

/// Result of normalizing a constraint.
// The payload variant is ~240 bytes because `LinExpr` carries its inline
// coefficient buffer by value. That is the point: `Normalized` is a
// short-lived by-value return that is destructured immediately, and
// boxing the constraint here would reintroduce exactly the per-row heap
// allocation the inline representation removes.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Normalized {
    /// The constraint is trivially satisfied (e.g. `3 >= 0`).
    Tautology,
    /// The constraint can never be satisfied by integers (e.g. `-1 >= 0`, or
    /// `2x + 1 == 0` whose gcd test fails).
    Contradiction,
    /// A nontrivial constraint, with coefficients divided by their gcd and
    /// (for `>=`) the constant tightened by floor division.
    Constraint(Constraint),
}

/// An affine constraint over a [`Space`].
///
/// # Examples
///
/// ```
/// use dmc_polyhedra::{Constraint, LinExpr, Space, DimKind};
///
/// let s = Space::from_dims([("i", DimKind::Index)]);
/// // i - 3 >= 0
/// let c = Constraint::ge(LinExpr::from_coeffs(vec![1], -3));
/// assert!(c.satisfied_by(&[5]).unwrap());
/// assert!(!c.satisfied_by(&[2]).unwrap());
/// assert_eq!(c.display(&s).to_string(), "i - 3 >= 0");
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Constraint {
    expr: LinExpr,
    kind: ConstraintKind,
}

/// Manual clone so every constraint copy is visible in
/// [`stats`](crate::stats) as `cons_cloned` — the tableau-copy volume the
/// arena representation is meant to keep cheap.
impl Clone for Constraint {
    fn clone(&self) -> Constraint {
        crate::stats::count_cons_cloned();
        Constraint {
            expr: self.expr.clone(),
            kind: self.kind,
        }
    }
}

impl Constraint {
    /// Builds the constraint `expr >= 0`.
    pub fn ge(expr: LinExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::Ge,
        }
    }

    /// Builds the constraint `expr == 0`.
    pub fn eq(expr: LinExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::Eq,
        }
    }

    /// Builds `lhs >= rhs` as `lhs - rhs >= 0`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn ge_pair(lhs: &LinExpr, rhs: &LinExpr) -> Result<Self, PolyError> {
        Ok(Constraint::ge(lhs.sub(rhs)?))
    }

    /// Builds `lhs == rhs` as `lhs - rhs == 0`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn eq_pair(lhs: &LinExpr, rhs: &LinExpr) -> Result<Self, PolyError> {
        Ok(Constraint::eq(lhs.sub(rhs)?))
    }

    /// The constraint's affine expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The comparison kind.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// Whether this is an equality constraint.
    pub fn is_eq(&self) -> bool {
        self.kind == ConstraintKind::Eq
    }

    /// Coefficient of dimension `dim` (shortcut for `expr().coeff(dim)`).
    pub fn coeff(&self, dim: usize) -> i128 {
        self.expr.coeff(dim)
    }

    /// Whether the constraint references dimension `dim`.
    pub fn involves(&self, dim: usize) -> bool {
        self.expr.coeff(dim) != 0
    }

    /// Evaluates the constraint at a point.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn satisfied_by(&self, point: &[i128]) -> Result<bool, PolyError> {
        let v = self.expr.eval(point)?;
        Ok(match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::Ge => v >= 0,
        })
    }

    /// Normalizes the constraint: divides by the gcd of the coefficients,
    /// tightening the constant for inequalities (`2x - 3 >= 0` becomes
    /// `x - 2 >= 0`), and applying the gcd divisibility test for equalities.
    pub fn normalize(&self) -> Normalized {
        let g = self.expr.content();
        if g == 0 {
            // Constant constraint.
            let c = self.expr.constant_term();
            let ok = match self.kind {
                ConstraintKind::Eq => c == 0,
                ConstraintKind::Ge => c >= 0,
            };
            return if ok {
                Normalized::Tautology
            } else {
                Normalized::Contradiction
            };
        }
        if g == 1 {
            return Normalized::Constraint(self.clone());
        }
        let mut coeffs: Vec<i128> = self.expr.coeffs().iter().map(|&c| c / g).collect();
        let c0 = self.expr.constant_term();
        match self.kind {
            ConstraintKind::Eq => {
                if c0 % g != 0 {
                    // gcd(a) does not divide the constant: no integer solutions.
                    return Normalized::Contradiction;
                }
                Normalized::Constraint(Constraint::eq(LinExpr::from_coeffs(
                    std::mem::take(&mut coeffs),
                    c0 / g,
                )))
            }
            ConstraintKind::Ge => Normalized::Constraint(Constraint::ge(LinExpr::from_coeffs(
                std::mem::take(&mut coeffs),
                num::div_floor(c0, g),
            ))),
        }
    }

    /// The integer negation of an inequality: `¬(e >= 0)` is `-e - 1 >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if called on an equality (the negation of an equality is a
    /// disjunction; see [`Polyhedron::subtract`](crate::Polyhedron::subtract)).
    pub fn negate_ge(&self) -> Constraint {
        assert!(
            !self.is_eq(),
            "cannot negate an equality into one constraint"
        );
        let mut e = self.expr.scaled(-1);
        e.set_constant(e.constant_term() - 1);
        Constraint::ge(e)
    }

    /// Substitutes dimension `dim` with an expression not referencing `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn substitute(&self, dim: usize, replacement: &LinExpr) -> Result<Constraint, PolyError> {
        Ok(Constraint {
            expr: self.expr.substitute(dim, replacement)?,
            kind: self.kind,
        })
    }

    /// Renders the constraint with dimension names from `space`.
    pub fn display<'a>(&'a self, space: &'a Space) -> DisplayConstraint<'a> {
        DisplayConstraint { con: self, space }
    }
}

/// Helper returned by [`Constraint::display`].
#[derive(Debug)]
pub struct DisplayConstraint<'a> {
    con: &'a Constraint,
    space: &'a Space,
}

impl fmt::Display for DisplayConstraint<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.con.kind {
            ConstraintKind::Eq => "==",
            ConstraintKind::Ge => ">=",
        };
        write!(f, "{} {} 0", self.con.expr.display(self.space), op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_tightens_inequalities() {
        // 2x - 3 >= 0  =>  x - 2 >= 0  (x >= 1.5 means x >= 2)
        let c = Constraint::ge(LinExpr::from_coeffs(vec![2], -3));
        match c.normalize() {
            Normalized::Constraint(n) => {
                assert_eq!(n.expr(), &LinExpr::from_coeffs(vec![1], -2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn normalize_gcd_test_on_equalities() {
        // 2x + 1 == 0 has no integer solution.
        let c = Constraint::eq(LinExpr::from_coeffs(vec![2], 1));
        assert_eq!(c.normalize(), Normalized::Contradiction);
        // 2x + 4 == 0  =>  x + 2 == 0.
        let c = Constraint::eq(LinExpr::from_coeffs(vec![2], 4));
        match c.normalize() {
            Normalized::Constraint(n) => {
                assert!(n.is_eq());
                assert_eq!(n.expr(), &LinExpr::from_coeffs(vec![1], 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn normalize_constant_constraints() {
        assert_eq!(
            Constraint::ge(LinExpr::constant(1, 0)).normalize(),
            Normalized::Tautology
        );
        assert_eq!(
            Constraint::ge(LinExpr::constant(1, -1)).normalize(),
            Normalized::Contradiction
        );
        assert_eq!(
            Constraint::eq(LinExpr::constant(1, 0)).normalize(),
            Normalized::Tautology
        );
        assert_eq!(
            Constraint::eq(LinExpr::constant(1, 2)).normalize(),
            Normalized::Contradiction
        );
    }

    #[test]
    fn negation_is_strict_complement() {
        // x - 3 >= 0; negation: -x + 2 >= 0 i.e. x <= 2.
        let c = Constraint::ge(LinExpr::from_coeffs(vec![1], -3));
        let n = c.negate_ge();
        for x in -5..10 {
            let a = c.satisfied_by(&[x]).unwrap();
            let b = n.satisfied_by(&[x]).unwrap();
            assert!(a != b, "exactly one must hold at x={x}");
        }
    }

    #[test]
    fn eq_pair_and_ge_pair() {
        let lhs = LinExpr::from_coeffs(vec![1, 0], 0);
        let rhs = LinExpr::from_coeffs(vec![0, 1], -3);
        let c = Constraint::eq_pair(&lhs, &rhs).unwrap();
        // i == j - 3  =>  i - j + 3 == 0
        assert_eq!(c.expr(), &LinExpr::from_coeffs(vec![1, -1], 3));
        let g = Constraint::ge_pair(&lhs, &rhs).unwrap();
        assert!(!g.is_eq());
    }
}
