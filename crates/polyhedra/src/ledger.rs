//! Work ledger: per-operation profiling records for the polyhedral engine.
//!
//! [`stats`](crate::stats) counts *how much* work the engine did; the
//! ledger records *which operation* did it and *on whose behalf*. When
//! enabled (see [`start`]) every Fourier–Motzkin step, projection,
//! integer-feasibility query, redundancy pass, and parametric-lexmax case
//! split appends a compact [`OpRecord`] — operation kind, constraint
//! counts in and out, dimensions eliminated, branch-and-bound nodes,
//! negation tests, cache outcome, wall-clock duration — tagged with the
//! ambient *attribution context*: a stack of frames pushed by the caller
//! ([`push_context`], used by `dmc_core`'s pipeline) naming the
//! statement/read/pass (or schedule phase) the engine is working for,
//! mirroring the `dmc_obs` lane-key hierarchy
//! (`stmt<i> → read<j> → <pass>`).
//!
//! # Work units and charged work
//!
//! Each record carries two weights:
//!
//! * **self units** — work the operation itself performed: 1 per FM step /
//!   projection / lexmax split, 1 + branch-and-bound nodes per feasibility
//!   query, 1 + negation tests per redundancy pass. Record counts and the
//!   summed node/test fields reconcile *exactly* against
//!   [`PolyStats`](crate::PolyStats) deltas taken over the same region.
//! * **charged units** — self units plus the charged units of every
//!   *nested* recorded operation; on a memo-cache **hit**, the charged
//!   units the original (miss) computation accumulated. Because every
//!   cached result is bit-identical to its uncached computation, the
//!   charged cost is a property of the *query*, not of the cache state: a
//!   warm cache answers instantly but still charges the logical cost.
//!   This makes top-level charged work deterministic — identical across
//!   runs, worker counts, and cache states — which is what lets collapsed
//!   stacks be compared byte-for-byte and work totals be gated exactly.
//!
//! # Overhead
//!
//! With the ledger off (the default) each record site costs exactly one
//! relaxed atomic load ([`enabled`]). Enabling the ledger bumps the
//! memo-cache epoch so every entry served under it carries a charged cost.
//!
//! # Threading and scopes
//!
//! Records accumulate in thread-local buffers, segmented by attribution
//! context; a buffer flushes into its scope's store when its thread's
//! context stack empties (one lock per pipeline job). Records made with no
//! context at all go straight to the store's orphan list. [`finish`]
//! drains the store; aggregation downstream is order-insensitive, so the
//! nondeterministic interleaving of worker flushes never shows.
//!
//! Storage is per-[`LedgerScope`]: each scope owns an enabled flag and a
//! store, and a thread records into its *current* scope (the process
//! default unless a [`LedgerScope::install`] guard is live). The free
//! functions [`start`]/[`finish`] operate on the default scope, exactly
//! as they did when the ledger was process-global; sessions that must
//! not share a ledger (concurrent compiles) create their own scope and
//! install it on every thread that works for them.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::stats;

const R: Ordering = Ordering::Relaxed;

/// Number of scopes currently recording, process-wide. The ledger-off
/// fast path checks this single atomic before touching anything else.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Whether the current thread's ledger scope is recording. When no scope
/// is recording anywhere in the process this is one relaxed atomic load —
/// the entire ledger-off cost of a record site.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(R) != 0 && with_scope(|s| s.enabled.load(R))
}

/// The kind of engine operation a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// One Fourier–Motzkin single-dimension elimination step.
    FmStep,
    /// A multi-dimension projection (`eliminate_dims`).
    Projection,
    /// An integer-feasibility query.
    Feasibility,
    /// A §5.1 redundancy-removal pass (`remove_redundant`).
    Redundancy,
    /// One explored piece of a parametric-lexmax case split.
    LexSplit,
}

impl OpKind {
    /// Every kind, in the order used by reports.
    pub const ALL: [OpKind; 5] = [
        OpKind::FmStep,
        OpKind::Projection,
        OpKind::Feasibility,
        OpKind::Redundancy,
        OpKind::LexSplit,
    ];

    /// Stable lower-case name (used as the leaf frame of collapsed stacks).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::FmStep => "fm_step",
            OpKind::Projection => "projection",
            OpKind::Feasibility => "feasibility",
            OpKind::Redundancy => "redundancy",
            OpKind::LexSplit => "lex_split",
        }
    }
}

/// How an operation interacted with the memo caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The operation does not consult a cache, the caches were off, or the
    /// system was below the size threshold.
    Uncached,
    /// Answered from a memo cache.
    Hit,
    /// Consulted a memo cache and computed (then stored) the answer.
    Miss,
}

/// One recorded engine operation.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// What ran.
    pub kind: OpKind,
    /// Constraints in the input system.
    pub cons_in: u32,
    /// Constraints in the result (0 where there is no result system).
    pub cons_out: u32,
    /// Dimensions eliminated (FM steps and projections).
    pub dims_eliminated: u32,
    /// Branch-and-bound nodes visited (feasibility queries).
    pub bnb_nodes: u64,
    /// Exact negation tests run (redundancy passes).
    pub negation_tests: u64,
    /// Cache interaction.
    pub cache: CacheOutcome,
    /// Wall-clock duration. Diagnostic only: durations are scheduling
    /// noise and never enter deterministic artifacts or gates.
    pub duration_ns: u64,
    /// `LinExpr` heap allocations made on this thread while the operation
    /// was open (inclusive of nested operations; 0 on cache hits).
    /// Diagnostic only: raw allocation counts depend on cache state and
    /// work partitioning, so — like `duration_ns` — they never enter
    /// deterministic artifacts or gates.
    pub allocs: u64,
    /// Work this operation itself performed (0 for cache hits).
    pub self_units: u64,
    /// Self units plus nested charged work; memoized logical cost on hits.
    pub charged_units: u64,
    /// True when no recorded operation encloses this one. Top-level
    /// charged units partition the run's logical work (nested records
    /// re-describe portions of their parent's charge).
    pub top_level: bool,
}

/// A run of records sharing one attribution context (outermost frame
/// first; empty = unattributed).
#[derive(Clone, Debug, Default)]
pub struct Segment {
    /// Attribution frames, e.g. `["stmt0", "read1", "opt.self_reuse"]`.
    pub ctx: Vec<String>,
    /// The records, in thread-local program order.
    pub records: Vec<OpRecord>,
}

/// Everything recorded between [`start`] and [`finish`].
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    /// Context-tagged record segments (cross-thread order unspecified).
    pub segments: Vec<Segment>,
}

/// Per-kind totals of a [`Ledger`], shaped for exact reconciliation
/// against a [`PolyStats`](crate::PolyStats) delta over the same region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerTotals {
    /// FM-step records (≡ `PolyStats::fm_steps`).
    pub fm_steps: u64,
    /// Projection records answered uncached or by a miss.
    pub projections: u64,
    /// Feasibility records (≡ `PolyStats::feasibility_calls`).
    pub feasibility_calls: u64,
    /// Σ branch-and-bound nodes (≡ `PolyStats::bnb_nodes`).
    pub bnb_nodes: u64,
    /// Redundancy records answered uncached or by a miss.
    pub redundancy_passes: u64,
    /// Σ negation tests (≡ `PolyStats::negation_tests`).
    pub negation_tests: u64,
    /// Lexmax-split records (≡ `PolyStats::lex_splits`).
    pub lex_splits: u64,
    /// Feasibility cache hits (≡ `PolyStats::feas_cache_hits`).
    pub feas_cache_hits: u64,
    /// Feasibility cache misses (≡ `PolyStats::feas_cache_misses`).
    pub feas_cache_misses: u64,
    /// Projection cache hits (≡ `PolyStats::proj_cache_hits`).
    pub proj_cache_hits: u64,
    /// Projection cache misses (≡ `PolyStats::proj_cache_misses`).
    pub proj_cache_misses: u64,
    /// Redundancy cache hits (≡ `PolyStats::redund_cache_hits`).
    pub redund_cache_hits: u64,
    /// Redundancy cache misses (≡ `PolyStats::redund_cache_misses`).
    pub redund_cache_misses: u64,
}

impl Ledger {
    /// Every record of every segment.
    pub fn records(&self) -> impl Iterator<Item = &OpRecord> {
        self.segments.iter().flat_map(|s| s.records.iter())
    }

    /// Total charged units of top-level records: the run's logical work.
    /// Deterministic for a given input — identical across runs, worker
    /// counts, and cache states.
    pub fn charged_work(&self) -> u64 {
        self.records()
            .filter(|r| r.top_level)
            .map(|r| r.charged_units)
            .sum()
    }

    /// Per-kind totals for reconciliation against `PolyStats`.
    pub fn totals(&self) -> LedgerTotals {
        let mut t = LedgerTotals::default();
        for r in self.records() {
            match r.kind {
                OpKind::FmStep => t.fm_steps += 1,
                OpKind::Projection => {
                    if r.cache != CacheOutcome::Hit {
                        t.projections += 1;
                    }
                    match r.cache {
                        CacheOutcome::Hit => t.proj_cache_hits += 1,
                        CacheOutcome::Miss => t.proj_cache_misses += 1,
                        CacheOutcome::Uncached => {}
                    }
                }
                OpKind::Feasibility => {
                    t.feasibility_calls += 1;
                    t.bnb_nodes += r.bnb_nodes;
                    match r.cache {
                        CacheOutcome::Hit => t.feas_cache_hits += 1,
                        CacheOutcome::Miss => t.feas_cache_misses += 1,
                        CacheOutcome::Uncached => {}
                    }
                }
                OpKind::Redundancy => {
                    if r.cache != CacheOutcome::Hit {
                        t.redundancy_passes += 1;
                    }
                    t.negation_tests += r.negation_tests;
                    match r.cache {
                        CacheOutcome::Hit => t.redund_cache_hits += 1,
                        CacheOutcome::Miss => t.redund_cache_misses += 1,
                        CacheOutcome::Uncached => {}
                    }
                }
                OpKind::LexSplit => t.lex_splits += 1,
            }
        }
        t
    }
}

// ---------------------------------------------------------------------
// Thread-local recording state.
// ---------------------------------------------------------------------

/// One open (not yet closed) operation's accumulator.
struct OpenFrame {
    /// Σ charged units of closed children.
    children: u64,
}

#[derive(Default)]
struct ThreadState {
    ctx: Vec<String>,
    segments: Vec<Segment>,
    open: Vec<OpenFrame>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

#[derive(Default)]
struct Store {
    segments: Vec<Segment>,
    orphans: Vec<OpRecord>,
}

/// The state behind one [`LedgerScope`] handle.
struct ScopeInner {
    enabled: AtomicBool,
    store: Mutex<Store>,
}

impl ScopeInner {
    fn new() -> Self {
        ScopeInner {
            enabled: AtomicBool::new(false),
            store: Mutex::new(Store::default()),
        }
    }

    fn store(&self) -> std::sync::MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn start(&self) {
        {
            let mut g = self.store();
            g.segments.clear();
            g.orphans.clear();
        }
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            st.segments.clear();
            st.open.clear();
        });
        stats::bump_epoch();
        if !self.enabled.swap(true, R) {
            ACTIVE.fetch_add(1, R);
        }
    }

    /// Flushes the calling thread's buffered residue, then takes the
    /// store contents.
    fn take(&self) -> Ledger {
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            if !st.segments.is_empty() {
                let segs = std::mem::take(&mut st.segments);
                self.store().segments.extend(segs);
            }
            st.open.clear();
        });
        let mut g = self.store();
        let mut segments = std::mem::take(&mut g.segments);
        if !g.orphans.is_empty() {
            segments.push(Segment {
                ctx: Vec::new(),
                records: std::mem::take(&mut g.orphans),
            });
        }
        Ledger { segments }
    }

    fn finish(&self) -> Ledger {
        if self.enabled.swap(false, R) {
            ACTIVE.fetch_sub(1, R);
        }
        self.take()
    }
}

fn default_scope() -> &'static Arc<ScopeInner> {
    static DEFAULT: OnceLock<Arc<ScopeInner>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(ScopeInner::new()))
}

thread_local! {
    /// The scope this thread records into; `None` means the default.
    static CURRENT: RefCell<Option<Arc<ScopeInner>>> = const { RefCell::new(None) };
}

fn with_scope<T>(f: impl FnOnce(&Arc<ScopeInner>) -> T) -> T {
    CURRENT.with(|c| match &*c.borrow() {
        Some(scope) => f(scope),
        None => f(default_scope()),
    })
}

/// An isolated ledger store. Handles are cheap to clone (an `Arc`);
/// clones refer to the same scope. A scope only receives records from
/// threads it is [`install`](Self::install)ed on.
#[derive(Clone)]
pub struct LedgerScope {
    inner: Arc<ScopeInner>,
}

impl LedgerScope {
    /// Creates a fresh, idle scope.
    pub fn new() -> Self {
        LedgerScope {
            inner: Arc::new(ScopeInner::new()),
        }
    }

    /// A handle to the process default scope — the one the free
    /// functions [`start`]/[`finish`] operate on.
    pub fn default_scope() -> Self {
        LedgerScope {
            inner: Arc::clone(default_scope()),
        }
    }

    /// A handle to the calling thread's current scope (the default
    /// unless an [`install`](Self::install) guard is live).
    pub fn current() -> Self {
        LedgerScope {
            inner: with_scope(Arc::clone),
        }
    }

    /// Whether two handles refer to the same scope.
    pub fn same_scope(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Starts recording into this scope: clears it, invalidates the memo
    /// caches (entries cached while no ledger was recording carry no
    /// charged cost — the epoch bump is process-wide), and enables the
    /// scope's record sites.
    pub fn start(&self) {
        self.inner.start();
    }

    /// Whether this scope is recording.
    pub fn is_recording(&self) -> bool {
        self.inner.enabled.load(R)
    }

    /// Stops recording and returns everything captured since
    /// [`start`](Self::start). Call after worker threads have been
    /// joined (the pipeline's scoped fan-out guarantees this); the
    /// calling thread's residue is flushed here.
    pub fn finish(&self) -> Ledger {
        self.inner.finish()
    }

    /// Takes everything recorded so far and leaves the scope recording —
    /// the per-request accounting primitive: one long-lived enablement
    /// (so memoized charges stay valid), drained once per served
    /// compile. Flushes the calling thread's residue first; as with
    /// [`finish`](Self::finish), workers must already be joined.
    pub fn drain(&self) -> Ledger {
        self.inner.take()
    }

    /// Makes this scope the calling thread's current scope until the
    /// guard drops (the previous scope is restored). Guards nest.
    pub fn install(&self) -> ScopeGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.inner)));
        ScopeGuard {
            prev,
            _not_send: PhantomData,
        }
    }
}

impl Default for LedgerScope {
    fn default() -> Self {
        LedgerScope::new()
    }
}

impl std::fmt::Debug for LedgerScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LedgerScope")
            .field("recording", &self.is_recording())
            .finish()
    }
}

/// Restores the thread's previous scope on drop. `!Send`: the guard must
/// drop on the thread that installed it.
pub struct ScopeGuard {
    prev: Option<Arc<ScopeInner>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Starts recording into the *default scope*: clears any previous
/// ledger, invalidates the memo caches (entries cached while the ledger
/// was off carry no charged cost), and enables the record sites.
pub fn start() {
    default_scope().start();
}

/// Stops the default scope's recording and returns everything captured
/// since [`start`]. Call after worker threads have been joined (the
/// pipeline's scoped fan-out guarantees this); the calling thread's
/// residue is flushed here.
pub fn finish() -> Ledger {
    default_scope().finish()
}

/// RAII attribution frame: pops itself on drop and flushes the thread's
/// buffered segments to the store when the context stack empties.
#[must_use = "the context pops when this guard drops"]
pub struct CtxGuard {
    /// Keeps the guard thread-bound (`!Send`): contexts are thread-local.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Pushes one attribution frame for the current thread. Frames are kept
/// even while the ledger is off, so a capture enabled mid-pipeline still
/// attributes correctly.
pub fn push_context(label: impl Into<String>) -> CtxGuard {
    STATE.with(|s| s.borrow_mut().ctx.push(label.into()));
    CtxGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            st.ctx.pop();
            if st.ctx.is_empty() && !st.segments.is_empty() {
                let segs = std::mem::take(&mut st.segments);
                drop(st);
                with_scope(|sc| sc.store().segments.extend(segs));
            }
        });
    }
}

fn append(st: &mut ThreadState, rec: OpRecord) {
    if st.ctx.is_empty() {
        with_scope(|sc| sc.store().orphans.push(rec));
        return;
    }
    match st.segments.last_mut() {
        Some(seg) if seg.ctx == st.ctx => seg.records.push(rec),
        _ => st.segments.push(Segment {
            ctx: st.ctx.clone(),
            records: vec![rec],
        }),
    }
}

// ---------------------------------------------------------------------
// Record sites (crate-internal).
// ---------------------------------------------------------------------

pub(crate) struct OpenOp {
    kind: OpKind,
    start: Instant,
    allocs_at_open: u64,
    cons_in: u32,
    cons_out: u32,
    dims_eliminated: u32,
    bnb_nodes: u64,
    negation_tests: u64,
    cache: CacheOutcome,
}

/// An in-flight recorded operation. Closes (and charges its parent) on
/// [`OpScope::finish`] or on drop, so early error returns stay balanced.
pub(crate) struct OpScope(Option<OpenOp>);

/// Opens an operation scope. With the ledger off this is the one relaxed
/// atomic load and nothing else.
pub(crate) fn op(kind: OpKind, cons_in: usize) -> OpScope {
    if !enabled() {
        return OpScope(None);
    }
    STATE.with(|s| s.borrow_mut().open.push(OpenFrame { children: 0 }));
    OpScope(Some(OpenOp {
        kind,
        start: Instant::now(),
        allocs_at_open: stats::thread_allocs(),
        cons_in: cons_in as u32,
        cons_out: 0,
        dims_eliminated: 0,
        bnb_nodes: 0,
        negation_tests: 0,
        cache: CacheOutcome::Uncached,
    }))
}

impl OpScope {
    pub(crate) fn set_cons_out(&mut self, n: usize) {
        if let Some(o) = &mut self.0 {
            o.cons_out = n as u32;
        }
    }
    pub(crate) fn set_dims_eliminated(&mut self, n: usize) {
        if let Some(o) = &mut self.0 {
            o.dims_eliminated = n as u32;
        }
    }
    pub(crate) fn set_bnb_nodes(&mut self, n: u64) {
        if let Some(o) = &mut self.0 {
            o.bnb_nodes = n;
        }
    }
    pub(crate) fn set_negation_tests(&mut self, n: u64) {
        if let Some(o) = &mut self.0 {
            o.negation_tests = n;
        }
    }
    pub(crate) fn set_cache_miss(&mut self) {
        if let Some(o) = &mut self.0 {
            o.cache = CacheOutcome::Miss;
        }
    }

    /// Closes the scope, returning its charged units (0 when disabled).
    pub(crate) fn finish(mut self) -> u64 {
        self.0.take().map_or(0, close)
    }
}

impl Drop for OpScope {
    fn drop(&mut self) {
        if let Some(o) = self.0.take() {
            close(o);
        }
    }
}

fn close(o: OpenOp) -> u64 {
    let duration_ns = o.start.elapsed().as_nanos() as u64;
    let allocs = stats::thread_allocs().saturating_sub(o.allocs_at_open);
    let self_units = 1 + o.bnb_nodes + o.negation_tests;
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let children = st.open.pop().map_or(0, |f| f.children);
        let charged = self_units + children;
        let top_level = st.open.is_empty();
        if let Some(parent) = st.open.last_mut() {
            parent.children += charged;
        }
        append(
            &mut st,
            OpRecord {
                kind: o.kind,
                cons_in: o.cons_in,
                cons_out: o.cons_out,
                dims_eliminated: o.dims_eliminated,
                bnb_nodes: o.bnb_nodes,
                negation_tests: o.negation_tests,
                cache: o.cache,
                duration_ns,
                allocs,
                self_units,
                charged_units: charged,
                top_level,
            },
        );
        charged
    })
}

/// Records a memo-cache hit: no work of its own, but the memoized charged
/// cost flows to the enclosing operation (and to the context's profile)
/// exactly as if the result had been recomputed.
pub(crate) fn record_hit(
    kind: OpKind,
    cons_in: usize,
    cons_out: usize,
    dims_eliminated: usize,
    charged: u64,
) {
    if !enabled() {
        return;
    }
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let top_level = st.open.is_empty();
        if let Some(parent) = st.open.last_mut() {
            parent.children += charged;
        }
        append(
            &mut st,
            OpRecord {
                kind,
                cons_in: cons_in as u32,
                cons_out: cons_out as u32,
                dims_eliminated: dims_eliminated as u32,
                bnb_nodes: 0,
                negation_tests: 0,
                cache: CacheOutcome::Hit,
                duration_ns: 0,
                allocs: 0,
                self_units: 0,
                charged_units: charged,
                top_level,
            },
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ledger is process-global; tests that enable it serialize here.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn scopes_nest_and_charge_parents() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        start();
        let _ctx = push_context("unit");
        let outer = op(OpKind::Projection, 10);
        let mut inner = op(OpKind::Feasibility, 4);
        inner.set_bnb_nodes(7);
        assert_eq!(inner.finish(), 8); // 1 + 7 nodes
        let charged = outer.finish();
        assert_eq!(charged, 1 + 8);
        record_hit(OpKind::Projection, 10, 3, 2, charged);
        drop(_ctx);
        let ledger = finish();
        assert_eq!(ledger.segments.len(), 1);
        assert_eq!(ledger.segments[0].ctx, vec!["unit".to_owned()]);
        let recs = &ledger.segments[0].records;
        assert_eq!(recs.len(), 3);
        // Closed innermost-first; the hit replays the outer charge.
        assert_eq!(recs[0].kind, OpKind::Feasibility);
        assert!(!recs[0].top_level);
        assert_eq!(recs[1].charged_units, 9);
        assert!(recs[1].top_level);
        assert_eq!(recs[2].cache, CacheOutcome::Hit);
        assert_eq!(recs[2].charged_units, 9);
        assert_eq!(recs[2].self_units, 0);
        // Totals: 2 feasibility-ish entries... shape check via totals().
        let t = ledger.totals();
        assert_eq!(t.feasibility_calls, 1);
        assert_eq!(t.bnb_nodes, 7);
        assert_eq!(t.projections, 1);
        assert_eq!(t.proj_cache_hits, 1);
        assert_eq!(ledger.charged_work(), 18);
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let _ctx = push_context("off");
        let scope = op(OpKind::FmStep, 3);
        assert_eq!(scope.finish(), 0);
        record_hit(OpKind::Feasibility, 1, 1, 0, 99);
        drop(_ctx);
        start();
        let ledger = finish();
        assert!(ledger.segments.is_empty());
    }

    #[test]
    fn scopes_isolate_and_drain_keeps_recording() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let scope = LedgerScope::new();
        scope.start();
        {
            let _sg = scope.install();
            let _ctx = push_context("scoped");
            op(OpKind::FmStep, 3).finish();
        }
        // Recorded into the scope, not the default store.
        start();
        let default_ledger = finish();
        assert!(
            default_ledger.segments.is_empty(),
            "scoped records leaked to default"
        );
        // drain() hands back the records and keeps the scope recording.
        let first = scope.drain();
        assert_eq!(first.totals().fm_steps, 1);
        assert!(scope.is_recording());
        {
            let _sg = scope.install();
            let _ctx = push_context("scoped");
            op(OpKind::LexSplit, 2).finish();
        }
        let second = scope.finish();
        assert_eq!(
            second.totals().fm_steps,
            0,
            "drain must not replay old records"
        );
        assert_eq!(second.totals().lex_splits, 1);
        assert!(!scope.is_recording());
    }

    #[test]
    fn uncontexted_records_become_orphans() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        start();
        op(OpKind::LexSplit, 2).finish();
        let ledger = finish();
        assert_eq!(ledger.segments.len(), 1);
        assert!(ledger.segments[0].ctx.is_empty());
        assert_eq!(ledger.totals().lex_splits, 1);
    }
}
