//! Parametric lexicographic optimization over integer polyhedra.
//!
//! This is the engine behind exact array data-flow analysis (paper §3.1,
//! following Feautrier's parametric integer programming): given a polyhedron
//! over "optimization" dimensions (write iterations) and "context"
//! dimensions (read iteration + symbolic constants), compute, for every
//! context, the lexicographic maximum of the optimization dimensions — as a
//! finite set of pieces, each with a convex context and an affine solution.
//!
//! Divisions are made exact by introducing auxiliary existential dimensions
//! (`q`, `r` with `c·q <= e <= c·q + c − 1`), exactly as the paper does for
//! modulo constraints in last-write relations (§4.4.2).

use crate::{ledger, stats, Constraint, LinExpr, PolyError, Polyhedron};

/// Direction of optimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Lexicographic maximum.
    Max,
    /// Lexicographic minimum.
    Min,
}

/// One piece of a parametric lexicographic optimum.
#[derive(Clone, Debug)]
pub struct LexPiece {
    /// The set of contexts this piece covers. Lives in the (possibly
    /// extended) space of [`LexOpt::space`]; the optimization dimensions are
    /// unconstrained, auxiliary dimensions added during the solve are
    /// constrained to their defining inequalities.
    pub context: Polyhedron,
    /// For each optimization dimension (in the order given to
    /// [`lexopt`]), its optimal value as an affine expression over the
    /// context (and auxiliary) dimensions.
    pub solution: Vec<LinExpr>,
}

/// Result of [`lexopt`]: disjoint pieces plus the final (shared) space.
#[derive(Clone, Debug)]
pub struct LexOpt {
    /// The space every piece lives in: the input space followed by any
    /// auxiliary dimensions introduced for exact division.
    pub space: crate::Space,
    /// Disjoint pieces covering every context that admits a solution.
    pub pieces: Vec<LexPiece>,
}

/// Errors specific to lexicographic optimization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LexError {
    /// An optimization dimension is unbounded in the optimizing direction.
    Unbounded,
    /// Arithmetic overflow in the underlying polyhedral operations.
    Poly(PolyError),
    /// The case analysis exceeded its budget.
    TooComplex,
}

impl From<PolyError> for LexError {
    fn from(e: PolyError) -> Self {
        LexError::Poly(e)
    }
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LexError::Unbounded => write!(f, "optimization dimension is unbounded"),
            LexError::Poly(e) => write!(f, "polyhedral arithmetic failed: {e}"),
            LexError::TooComplex => write!(f, "lexicographic case analysis exceeded budget"),
        }
    }
}

impl std::error::Error for LexError {}

/// Computes the parametric lexicographic optimum of `opt_dims` (in order)
/// over `poly`. All other dimensions are context.
///
/// Returned pieces are pairwise disjoint in context; a context not covered
/// by any piece has no solution (the polyhedron is empty there).
///
/// # Errors
///
/// * [`LexError::Unbounded`] if some optimization dimension has no bound in
///   the optimizing direction inside the polyhedron.
/// * [`LexError::Poly`] on arithmetic overflow.
/// * [`LexError::TooComplex`] if the piece split exceeds an internal budget.
///
/// # Examples
///
/// ```
/// use dmc_polyhedra::{lexopt, Direction, Polyhedron, Space, DimKind, LinExpr, Constraint};
///
/// // max j subject to 0 <= j <= i  (context: i).
/// let s = Space::from_dims([("i", DimKind::Index), ("j", DimKind::Index)]);
/// let mut p = Polyhedron::universe(s);
/// p.add(Constraint::ge(LinExpr::from_coeffs(vec![0, 1], 0)));
/// p.add(Constraint::ge(LinExpr::from_coeffs(vec![1, -1], 0)));
/// let r = lexopt(&p, &[1], Direction::Max).unwrap();
/// assert_eq!(r.pieces.len(), 1);
/// // solution: j* = i
/// assert_eq!(r.pieces[0].solution[0], LinExpr::from_coeffs(vec![1, 0], 0));
/// ```
pub fn lexopt(poly: &Polyhedron, opt_dims: &[usize], dir: Direction) -> Result<LexOpt, LexError> {
    let mut out = Vec::new();
    let mut budget: u32 = 512;
    rec(
        poly.clone(),
        opt_dims,
        0,
        dir,
        Vec::new(),
        &mut out,
        &mut budget,
    )?;
    // All pieces share a space only if the aux-extension path was identical;
    // normalize by embedding each piece into the widest space produced.
    let widest = out
        .iter()
        .map(|p: &LexPiece| p.context.space().clone())
        .max_by_key(|s| s.len())
        .unwrap_or_else(|| poly.space().clone());
    let pieces = out
        .into_iter()
        .map(|p| {
            let extra = widest.len() - p.context.space().len();
            if extra == 0 {
                p
            } else {
                let mut tail = crate::Space::new();
                for k in p.context.space().len()..widest.len() {
                    tail.add_dim(widest.dim(k).name().to_owned(), widest.dim(k).kind());
                }
                LexPiece {
                    context: p.context.extend_space(&tail),
                    solution: p.solution.into_iter().map(|e| e.extend(extra)).collect(),
                }
            }
        })
        .collect();
    Ok(LexOpt {
        space: widest,
        pieces,
    })
}

fn rec(
    cur: Polyhedron,
    all_opt: &[usize],
    depth: usize,
    dir: Direction,
    sols: Vec<LinExpr>,
    out: &mut Vec<LexPiece>,
    budget: &mut u32,
) -> Result<(), LexError> {
    if *budget == 0 {
        return Err(LexError::TooComplex);
    }
    *budget -= 1;
    if cur.is_obviously_empty() || !cur.integer_feasibility()?.possibly_feasible() {
        return Ok(());
    }
    let Some(&v) = all_opt.get(depth) else {
        // Pad solutions to the current (possibly extended) space width.
        let n = cur.space().len();
        let mut solution: Vec<LinExpr> = sols.iter().map(|e| e.extend(n - e.len())).collect();
        // A solution found early may reference a later optimization
        // dimension (its pinning equality mentioned it). Back-substitute
        // from the last component towards the first; the last component can
        // reference no optimization dimension at all (they were substituted
        // out of the polyhedron before it was solved), so this terminates
        // with every component purely over context/auxiliary dimensions.
        for idx in (0..solution.len()).rev() {
            for j in 0..idx {
                let d = all_opt[idx];
                if solution[j].coeff(d) != 0 {
                    let repl = solution[idx].clone();
                    solution[j] = solution[j].substitute(d, &repl)?;
                }
            }
        }
        debug_assert!(solution
            .iter()
            .all(|e| all_opt.iter().all(|&d| e.coeff(d) == 0)));
        out.push(LexPiece {
            context: cur,
            solution,
        });
        return Ok(());
    };

    // Case 1: an equality pins v.
    if let Some(eq) = cur
        .constraints()
        .iter()
        .find(|c| c.is_eq() && c.involves(v))
        .cloned()
    {
        let a = eq.coeff(v);
        let mut e_rest = eq.expr().clone();
        e_rest.set_coeff(v, 0);
        if a.abs() == 1 {
            let repl = e_rest.scale(-a.signum())?;
            let next = cur.substitute_dim(v, &repl)?;
            let mut sols = sols;
            sols.push(repl);
            return rec(next, all_opt, depth + 1, dir, sols, out, budget);
        }
        // |a| > 1: introduce aux q == v; the equality constrains q (and
        // imposes divisibility on the context).
        let (next, q) = add_aux(&cur);
        let repl = LinExpr::var(next.space().len(), q);
        let next = next.substitute_dim(v, &repl)?;
        let mut sols: Vec<LinExpr> = sols.iter().map(|e| e.extend(1)).collect();
        sols.push(repl);
        return rec(next, all_opt, depth + 1, dir, sols, out, budget);
    }

    // Case 2: gather bounds in the optimizing direction.
    //
    // For Max we need upper bounds `c·v <= e` (coefficient < 0 in the
    // `>= 0` form); for Min, lower bounds `c·v >= -e`.
    struct Side {
        /// v `<=` floor(e/c) (Max) or v `>=` ceil(e/c) (Min); c >= 1.
        e: LinExpr,
        c: i128,
    }
    let mut sides: Vec<Side> = Vec::new();
    for con in cur.constraints() {
        let a = con.coeff(v);
        if a == 0 {
            continue;
        }
        let mut e = con.expr().clone();
        e.set_coeff(v, 0);
        match dir {
            Direction::Max if a < 0 => sides.push(Side { e, c: -a }),
            Direction::Min if a > 0 => sides.push(Side {
                e: e.scale(-1)?,
                c: a,
            }),
            _ => {}
        }
    }
    if sides.is_empty() {
        return Err(LexError::Unbounded);
    }

    // Split on which bound is tight. Piece j: bound j is (rationally)
    // tightest, strictly tighter than bounds i < j (ties go to the smaller
    // index), i.e. for Max: e_j/c_j < e_i/c_i for i<j and <= for i>j.
    for j in 0..sides.len() {
        let mut piece = cur.clone();
        for (i, other) in sides.iter().enumerate() {
            if i == j {
                continue;
            }
            // Max: bound j tightest means smallest, c_i·e_j <= c_j·e_i.
            // Min: bound j tightest means largest, c_i·e_j >= c_j·e_i.
            let lhs = sides[j].e.scale(other.c)?;
            let rhs = other.e.scale(sides[j].c)?;
            let mut diff = match dir {
                Direction::Max => rhs.sub(&lhs)?, // >= 0 required
                Direction::Min => lhs.sub(&rhs)?,
            };
            if i < j {
                diff.set_constant(diff.constant_term() - 1); // strict
            }
            piece.add(Constraint::ge(diff));
        }
        if piece.is_obviously_empty() {
            continue;
        }
        // One case split explored per surviving piece of the
        // which-bound-is-tight disjunction.
        stats::count_lex_split();
        let op = ledger::op(ledger::OpKind::LexSplit, piece.constraints().len());
        let (c, e) = (sides[j].c, sides[j].e.clone());
        if c == 1 {
            // c == 1: the bound value is exactly e for both directions
            // (e was pre-negated for Min so that v >= ceil(e/c)).
            let repl = e;
            let next = piece.substitute_dim(v, &repl)?;
            let mut sols = sols.clone();
            sols.push(repl);
            rec(next, all_opt, depth + 1, dir, sols, out, budget)?;
            op.finish();
        } else {
            // v* = floor(e/c) (Max) or ceil(e/c) (Min): introduce aux q with
            //   Max: c·q <= e <= c·q + c − 1
            //   Min: c·q >= e >= c·q − c + 1  (q = ceil(e/c))
            let (next0, q) = add_aux(&piece);
            let n = next0.space().len();
            let qe = LinExpr::var(n, q);
            let e_ext = e.extend(1);
            let mut next = next0;
            match dir {
                Direction::Max => {
                    next.add(Constraint::ge(e_ext.sub(&qe.scale(c)?)?)); // e - c q >= 0
                    let mut hi = qe.scale(c)?.sub(&e_ext)?; // c q - e + (c-1) >= 0
                    hi.set_constant(hi.constant_term() + (c - 1));
                    next.add(Constraint::ge(hi));
                }
                Direction::Min => {
                    next.add(Constraint::ge(qe.scale(c)?.sub(&e_ext)?)); // c q - e >= 0
                    let mut lo = e_ext.sub(&qe.scale(c)?)?; // e - c q + (c-1) >= 0
                    lo.set_constant(lo.constant_term() + (c - 1));
                    next.add(Constraint::ge(lo));
                }
            }
            let repl = qe;
            let next = next.substitute_dim(v, &repl)?;
            let mut sols: Vec<LinExpr> = sols.iter().map(|s| s.extend(1)).collect();
            sols.push(repl);
            rec(next, all_opt, depth + 1, dir, sols, out, budget)?;
            op.finish();
        }
    }
    Ok(())
}

/// Appends a fresh auxiliary dimension, returning the extended polyhedron
/// and the new dimension's index.
fn add_aux(p: &Polyhedron) -> (Polyhedron, usize) {
    let mut tail = crate::Space::new();
    let mut k = p.space().len();
    let name = loop {
        let cand = format!("$q{k}");
        if p.space().index_of(&cand).is_none() {
            break cand;
        }
        k += 1;
    };
    tail.add_dim(name, crate::DimKind::Aux);
    let q = p.space().len();
    (p.extend_space(&tail), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DimKind, Space};

    fn sp(names: &[&str]) -> Space {
        Space::from_dims(names.iter().map(|&n| (n, DimKind::Index)))
    }

    fn ge(coeffs: Vec<i128>, c: i128) -> Constraint {
        Constraint::ge(LinExpr::from_coeffs(coeffs, c))
    }

    /// Brute-force lexmax for cross-checking.
    fn brute_lexmax(
        p: &Polyhedron,
        opt: &[usize],
        ctx: &[i128],
        range: std::ops::Range<i128>,
    ) -> Option<Vec<i128>> {
        let n = p.space().len();
        let mut best: Option<Vec<i128>> = None;
        let mut point = ctx.to_vec();
        assert_eq!(point.len(), n);
        fn go(
            p: &Polyhedron,
            opt: &[usize],
            k: usize,
            point: &mut Vec<i128>,
            range: &std::ops::Range<i128>,
            best: &mut Option<Vec<i128>>,
        ) {
            if k == opt.len() {
                if p.contains(point).unwrap() {
                    let key: Vec<i128> = opt.iter().map(|&d| point[d]).collect();
                    if best.as_ref().is_none_or(|b| key > *b) {
                        *best = Some(key);
                    }
                }
                return;
            }
            for v in range.clone() {
                point[opt[k]] = v;
                go(p, opt, k + 1, point, range, best);
            }
        }
        go(p, opt, 0, &mut point, &range, &mut best);
        best
    }

    /// Evaluates a piece's solution at a concrete context, solving for aux
    /// dims by searching a small range.
    fn eval_piece(
        piece: &LexPiece,
        ctx: &[i128],
        aux_range: std::ops::Range<i128>,
    ) -> Option<Vec<i128>> {
        let n = piece.context.space().len();
        let aux_dims: Vec<usize> = (ctx.len()..n).collect();
        let mut point = ctx.to_vec();
        point.resize(n, 0);
        fn go(
            piece: &LexPiece,
            aux: &[usize],
            k: usize,
            point: &mut Vec<i128>,
            range: &std::ops::Range<i128>,
        ) -> Option<Vec<i128>> {
            if k == aux.len() {
                if piece.context.contains(point).unwrap() {
                    return Some(
                        piece
                            .solution
                            .iter()
                            .map(|e| e.eval(point).unwrap())
                            .collect(),
                    );
                }
                return None;
            }
            for v in range.clone() {
                point[aux[k]] = v;
                if let Some(s) = go(piece, aux, k + 1, point, range) {
                    return Some(s);
                }
            }
            None
        }
        go(piece, &aux_dims, 0, &mut point, &aux_range)
    }

    #[test]
    fn single_upper_bound() {
        // max j, 0 <= j <= i.
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![0, 1], 0));
        p.add(ge(vec![1, -1], 0));
        let r = lexopt(&p, &[1], Direction::Max).unwrap();
        assert_eq!(r.pieces.len(), 1);
        assert_eq!(r.pieces[0].solution[0], LinExpr::from_coeffs(vec![1, 0], 0));
    }

    #[test]
    fn equality_determined() {
        // j == i - 3, j >= 0: classic last-write shape.
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(Constraint::eq(LinExpr::from_coeffs(vec![1, -1], -3)));
        p.add(ge(vec![0, 1], 0));
        let r = lexopt(&p, &[1], Direction::Max).unwrap();
        assert_eq!(r.pieces.len(), 1);
        assert_eq!(
            r.pieces[0].solution[0],
            LinExpr::from_coeffs(vec![1, 0], -3)
        );
        // Context requires i - 3 >= 0.
        assert!(r.pieces[0].context.contains(&[3, 99]).unwrap());
        assert!(!r.pieces[0].context.contains(&[2, 99]).unwrap());
    }

    #[test]
    fn two_upper_bounds_split() {
        // max j, j <= i, j <= 10 - i, j >= 0: bound switches at i == 5.
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![0, 1], 0));
        p.add(ge(vec![1, -1], 0)); // j <= i
        p.add(ge(vec![-1, -1], 10)); // j <= 10 - i
        let r = lexopt(&p, &[1], Direction::Max).unwrap();
        assert!(r.pieces.len() >= 2);
        for i in 0..=10i128 {
            let expected = brute_lexmax(&p, &[1], &[i, 0], -1..12);
            let mut got: Option<Vec<i128>> = None;
            let mut hits = 0;
            for piece in &r.pieces {
                if let Some(s) = eval_piece(piece, &[i, 0], -20..20) {
                    hits += 1;
                    got = Some(s);
                }
            }
            assert!(hits <= 1, "pieces overlap at i={i}");
            assert_eq!(got, expected, "i={i}");
        }
    }

    #[test]
    fn division_bound_introduces_aux() {
        // max j, 2j <= i, j >= 0: j* = floor(i/2).
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![0, 1], 0));
        p.add(ge(vec![1, -2], 0)); // 2j <= i
        let r = lexopt(&p, &[1], Direction::Max).unwrap();
        for i in 0..10i128 {
            let expected = brute_lexmax(&p, &[1], &[i, 0], -1..12);
            let mut got = None;
            for piece in &r.pieces {
                if let Some(s) = eval_piece(piece, &[i, 0], -20..20) {
                    got = Some(s);
                }
            }
            assert_eq!(got, expected, "i={i}");
        }
    }

    #[test]
    fn lexmin_mirrors_lexmax() {
        // min j, j >= i - 4, j >= 0 (two lower bounds).
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![-1, 1], 4)); // j >= i - 4
        p.add(ge(vec![0, 1], 0)); // j >= 0
        p.add(ge(vec![0, -1], 100));
        let r = lexopt(&p, &[1], Direction::Min).unwrap();
        for i in -3..12i128 {
            let n = p.space().len();
            // brute lexmin
            let mut expected: Option<Vec<i128>> = None;
            for j in -5..110i128 {
                let mut pt = vec![i, j];
                pt.resize(n, 0);
                if p.contains(&pt).unwrap() {
                    expected = Some(vec![j]);
                    break;
                }
            }
            let mut got = None;
            for piece in &r.pieces {
                if let Some(s) = eval_piece(piece, &[i, 0], -20..20) {
                    got = Some(s);
                }
            }
            assert_eq!(got, expected, "i={i}");
        }
    }

    #[test]
    fn two_level_lexmax() {
        // max (tw, iw) with tw <= tr - 1, 0 <= tw, iw == ir, 0 <= iw <= 100:
        // models a level-1 carried dependence.
        let mut p = Polyhedron::universe(sp(&["tr", "ir", "tw", "iw"]));
        p.add(ge(vec![1, 0, -1, 0], -1)); // tw <= tr - 1
        p.add(ge(vec![0, 0, 1, 0], 0)); // tw >= 0
        p.add(Constraint::eq(LinExpr::from_coeffs(vec![0, 1, 0, -1], 0))); // iw == ir
        p.add(ge(vec![0, 0, 0, 1], 0));
        p.add(ge(vec![0, 0, 0, -1], 100));
        let r = lexopt(&p, &[2, 3], Direction::Max).unwrap();
        assert_eq!(r.pieces.len(), 1);
        let piece = &r.pieces[0];
        // tw* = tr - 1, iw* = ir.
        assert_eq!(
            piece.solution[0],
            LinExpr::from_coeffs(vec![1, 0, 0, 0], -1)
        );
        assert_eq!(piece.solution[1], LinExpr::from_coeffs(vec![0, 1, 0, 0], 0));
    }

    #[test]
    fn infeasible_gives_no_pieces() {
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![0, 1], 0));
        p.add(ge(vec![0, -1], -1)); // j <= -1
        let r = lexopt(&p, &[1], Direction::Max).unwrap();
        assert!(r.pieces.is_empty());
    }

    #[test]
    fn unbounded_is_detected() {
        let p = Polyhedron::universe(sp(&["i", "j"]));
        assert_eq!(lexopt(&p, &[1], Direction::Max).unwrap_err(), {
            LexError::Unbounded
        });
    }
}
