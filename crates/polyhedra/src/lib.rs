//! # dmc-polyhedra
//!
//! Exact integer polyhedral arithmetic for the `dmc` distributed-memory
//! compiler — the uniform framework of Amarasinghe & Lam (PLDI '93), where
//! data decompositions, computation decompositions and data-flow information
//! are all systems of linear inequalities, and code generation reduces to
//! projecting polyhedra onto lower-dimensional spaces (§4–5 of the paper).
//!
//! The crate provides:
//!
//! * [`Space`], [`LinExpr`], [`Constraint`], [`Polyhedron`] — the basic
//!   representation (all coefficients are exact `i128` integers);
//! * Fourier–Motzkin elimination ([`Polyhedron::eliminate_dim`]) with
//!   superfluous-constraint removal by the paper's negation test
//!   ([`Polyhedron::remove_redundant`]);
//! * integer feasibility ([`Polyhedron::integer_feasibility`]) via exact
//!   equality elimination, real/dark shadows and branch-and-bound;
//! * polyhedron scanning ([`scan_bounds`]) à la Ancourt–Irigoin, producing
//!   the loop bounds that enumerate all integer solutions lexicographically;
//! * parametric lexicographic optimization ([`lexopt`]) — the engine behind
//!   exact array data-flow analysis (Last Write Trees);
//! * set difference ([`Polyhedron::subtract`]) into disjoint convex pieces.
//!
//! ## Example
//!
//! ```
//! use dmc_polyhedra::{Polyhedron, Space, DimKind, LinExpr, Constraint, scan_bounds};
//!
//! // { (i, j) : 0 <= i <= 3, 0 <= j <= i }
//! let s = Space::from_dims([("i", DimKind::Index), ("j", DimKind::Index)]);
//! let mut p = Polyhedron::universe(s);
//! p.add(Constraint::ge(LinExpr::from_coeffs(vec![1, 0], 0)));
//! p.add(Constraint::ge(LinExpr::from_coeffs(vec![-1, 0], 3)));
//! p.add(Constraint::ge(LinExpr::from_coeffs(vec![0, 1], 0)));
//! p.add(Constraint::ge(LinExpr::from_coeffs(vec![1, -1], 0)));
//! let nest = scan_bounds(&p, &[0, 1])?;
//! let points = nest.enumerate(&[0, 0], 1000)?;
//! assert_eq!(points.len(), 4 + 3 + 2 + 1);
//! # Ok::<(), dmc_polyhedra::PolyError>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

pub mod cache;
pub mod codec;
pub mod ledger;
pub mod num;
pub mod stats;

mod batch;
mod constraint;
mod lexopt;
mod linexpr;
mod polyhedron;
mod scan;
mod space;

pub use batch::batch_feasibility;
pub use cache::CanonicalKey;
pub use constraint::{Constraint, ConstraintKind, Normalized};
pub use lexopt::{lexopt, Direction, LexError, LexOpt, LexPiece};
pub use linexpr::LinExpr;
pub use polyhedron::{Feasibility, Polyhedron};
pub use scan::{scan_bounds, Bound, ScanNest, VarBounds};
pub use space::{Dim, DimKind, Space};
pub use stats::PolyStats;

/// Errors produced by polyhedral arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolyError {
    /// An `i128` coefficient computation overflowed.
    Overflow,
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::Overflow => write!(f, "integer coefficient overflow"),
        }
    }
}

impl std::error::Error for PolyError {}
