//! Affine (linear + constant) expressions over a [`Space`].

use std::fmt;

use crate::num;
use crate::{PolyError, Space};

/// An affine expression `c0 + Σ coeffs[k] * dim_k` over a space with a fixed
/// number of dimensions.
///
/// The expression does not own its space; operations on expressions from
/// different spaces are caught by length assertions.
///
/// # Examples
///
/// ```
/// use dmc_polyhedra::{LinExpr, Space, DimKind};
///
/// let s = Space::from_dims([("i", DimKind::Index), ("N", DimKind::Param)]);
/// // 2*i - N + 3
/// let e = LinExpr::from_coeffs(vec![2, -1], 3);
/// assert_eq!(e.eval(&[5, 4]).unwrap(), 2 * 5 - 4 + 3);
/// assert_eq!(e.display(&s).to_string(), "2i - N + 3");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinExpr {
    coeffs: Vec<i128>,
    constant: i128,
}

impl LinExpr {
    /// The zero expression over `n` dimensions.
    pub fn zero(n: usize) -> Self {
        LinExpr { coeffs: vec![0; n], constant: 0 }
    }

    /// A constant expression over `n` dimensions.
    pub fn constant(n: usize, c: i128) -> Self {
        LinExpr { coeffs: vec![0; n], constant: c }
    }

    /// The expression `1 * dim` over `n` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= n`.
    pub fn var(n: usize, dim: usize) -> Self {
        let mut e = LinExpr::zero(n);
        e.coeffs[dim] = 1;
        e
    }

    /// Builds an expression from explicit coefficients and a constant.
    pub fn from_coeffs(coeffs: Vec<i128>, constant: i128) -> Self {
        LinExpr { coeffs, constant }
    }

    /// Number of dimensions this expression ranges over.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the expression has zero dimensions (it may still be a nonzero
    /// constant).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficient of dimension `dim`.
    pub fn coeff(&self, dim: usize) -> i128 {
        self.coeffs[dim]
    }

    /// Sets the coefficient of dimension `dim`.
    pub fn set_coeff(&mut self, dim: usize, v: i128) {
        self.coeffs[dim] = v;
    }

    /// The constant term.
    pub fn constant_term(&self) -> i128 {
        self.constant
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, c: i128) {
        self.constant = c;
    }

    /// All coefficients, in dimension order.
    pub fn coeffs(&self) -> &[i128] {
        &self.coeffs
    }

    /// True if every coefficient is zero (a constant expression).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// True if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.is_constant()
    }

    /// Sum of two expressions over the same space.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    ///
    /// # Panics
    ///
    /// Panics if the expressions have different lengths.
    pub fn add(&self, other: &LinExpr) -> Result<LinExpr, PolyError> {
        assert_eq!(self.len(), other.len(), "space mismatch");
        let mut coeffs = Vec::with_capacity(self.len());
        for (a, b) in self.coeffs.iter().zip(&other.coeffs) {
            coeffs.push(num::add(*a, *b)?);
        }
        Ok(LinExpr { coeffs, constant: num::add(self.constant, other.constant)? })
    }

    /// Difference of two expressions over the same space.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    pub fn sub(&self, other: &LinExpr) -> Result<LinExpr, PolyError> {
        self.add(&other.scale(-1)?)
    }

    /// The expression multiplied by scalar `k`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    pub fn scale(&self, k: i128) -> Result<LinExpr, PolyError> {
        let mut coeffs = Vec::with_capacity(self.len());
        for &a in &self.coeffs {
            coeffs.push(num::mul(a, k)?);
        }
        Ok(LinExpr { coeffs, constant: num::mul(self.constant, k)? })
    }

    /// Infallible scaling — panics on overflow. Convenience for tests and
    /// small literal computations.
    ///
    /// # Panics
    ///
    /// Panics on coefficient overflow.
    pub fn scaled(&self, k: i128) -> LinExpr {
        self.scale(k).expect("coefficient overflow")
    }

    /// Evaluates the expression at the given point.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.len()`.
    pub fn eval(&self, point: &[i128]) -> Result<i128, PolyError> {
        assert_eq!(point.len(), self.len(), "point dimension mismatch");
        let mut acc = self.constant;
        for (c, x) in self.coeffs.iter().zip(point) {
            acc = num::add(acc, num::mul(*c, *x)?)?;
        }
        Ok(acc)
    }

    /// Substitutes dimension `dim` with `replacement` (whose coefficient on
    /// `dim` must be zero), i.e. computes `self[dim := replacement]`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `replacement` itself references `dim` or the lengths differ.
    pub fn substitute(&self, dim: usize, replacement: &LinExpr) -> Result<LinExpr, PolyError> {
        assert_eq!(self.len(), replacement.len(), "space mismatch");
        assert_eq!(replacement.coeff(dim), 0, "replacement references substituted dim");
        let k = self.coeffs[dim];
        if k == 0 {
            return Ok(self.clone());
        }
        let mut out = self.clone();
        out.coeffs[dim] = 0;
        out.add(&replacement.scale(k)?)
    }

    /// Extends the expression with `extra` zero-coefficient dimensions at the
    /// end.
    pub fn extend(&self, extra: usize) -> LinExpr {
        let mut coeffs = self.coeffs.clone();
        coeffs.extend(std::iter::repeat_n(0, extra));
        LinExpr { coeffs, constant: self.constant }
    }

    /// Reorders/embeds the expression into a new space. `map[k]` gives the
    /// position in the new space of old dimension `k`.
    ///
    /// # Panics
    ///
    /// Panics if `map` is shorter than the expression or maps out of bounds.
    pub fn remap(&self, new_len: usize, map: &[usize]) -> LinExpr {
        assert!(map.len() >= self.len(), "remap table too short");
        let mut coeffs = vec![0; new_len];
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                coeffs[map[k]] = c;
            }
        }
        LinExpr { coeffs, constant: self.constant }
    }

    /// Removes the dimension `dim` (whose coefficient must be zero).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient of `dim` is nonzero.
    pub fn drop_dim(&self, dim: usize) -> LinExpr {
        assert_eq!(self.coeffs[dim], 0, "dropping a referenced dimension");
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(dim);
        LinExpr { coeffs, constant: self.constant }
    }

    /// Gcd of all coefficients (not the constant); 0 for constant expressions.
    pub fn content(&self) -> i128 {
        self.coeffs.iter().fold(0, |g, &c| num::gcd(g, c))
    }

    /// Renders the expression with dimension names from `space`.
    pub fn display<'a>(&'a self, space: &'a Space) -> DisplayLinExpr<'a> {
        DisplayLinExpr { expr: self, space }
    }
}

/// Helper returned by [`LinExpr::display`].
#[derive(Debug)]
pub struct DisplayLinExpr<'a> {
    expr: &'a LinExpr,
    space: &'a Space,
}

impl fmt::Display for DisplayLinExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (k, &c) in self.expr.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = self.space.dim(k).name();
            if !wrote {
                if c == 1 {
                    write!(f, "{name}")?;
                } else if c == -1 {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{c}{name}")?;
                }
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {c}{name}")?;
                }
            } else if c == -1 {
                write!(f, " - {name}")?;
            } else {
                write!(f, " - {}{name}", -c)?;
            }
            wrote = true;
        }
        let c0 = self.expr.constant;
        if !wrote {
            write!(f, "{c0}")?;
        } else if c0 > 0 {
            write!(f, " + {c0}")?;
        } else if c0 < 0 {
            write!(f, " - {}", -c0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DimKind;

    fn space2() -> Space {
        Space::from_dims([("i", DimKind::Index), ("j", DimKind::Index)])
    }

    #[test]
    fn construction_and_eval() {
        let e = LinExpr::from_coeffs(vec![2, -3], 5);
        assert_eq!(e.eval(&[1, 1]).unwrap(), 4);
        assert_eq!(e.eval(&[0, 0]).unwrap(), 5);
        assert!(!e.is_constant());
        assert!(LinExpr::constant(2, 7).is_constant());
        assert!(LinExpr::zero(2).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = LinExpr::from_coeffs(vec![1, 2], 3);
        let b = LinExpr::from_coeffs(vec![4, -2], 1);
        assert_eq!(a.add(&b).unwrap(), LinExpr::from_coeffs(vec![5, 0], 4));
        assert_eq!(a.sub(&b).unwrap(), LinExpr::from_coeffs(vec![-3, 4], 2));
        assert_eq!(a.scale(-2).unwrap(), LinExpr::from_coeffs(vec![-2, -4], -6));
    }

    #[test]
    fn substitution() {
        // e = 2i + j + 1; substitute i := j - 3  =>  2j - 6 + j + 1 = 3j - 5
        let e = LinExpr::from_coeffs(vec![2, 1], 1);
        let r = LinExpr::from_coeffs(vec![0, 1], -3);
        let out = e.substitute(0, &r).unwrap();
        assert_eq!(out, LinExpr::from_coeffs(vec![0, 3], -5));
    }

    #[test]
    #[should_panic(expected = "replacement references")]
    fn substitution_self_reference_panics() {
        let e = LinExpr::var(2, 0);
        let r = LinExpr::var(2, 0);
        let _ = e.substitute(0, &r);
    }

    #[test]
    fn remap_and_extend() {
        let e = LinExpr::from_coeffs(vec![1, 2], 7);
        let big = e.remap(4, &[3, 0]);
        assert_eq!(big, LinExpr::from_coeffs(vec![2, 0, 0, 1], 7));
        assert_eq!(e.extend(2), LinExpr::from_coeffs(vec![1, 2, 0, 0], 7));
    }

    #[test]
    fn display_formatting() {
        let s = space2();
        assert_eq!(LinExpr::from_coeffs(vec![1, -1], 0).display(&s).to_string(), "i - j");
        assert_eq!(LinExpr::from_coeffs(vec![-2, 0], 3).display(&s).to_string(), "-2i + 3");
        assert_eq!(LinExpr::constant(2, 0).display(&s).to_string(), "0");
        assert_eq!(LinExpr::constant(2, -4).display(&s).to_string(), "-4");
    }

    #[test]
    fn content_gcd() {
        assert_eq!(LinExpr::from_coeffs(vec![4, -6], 3).content(), 2);
        assert_eq!(LinExpr::constant(2, 3).content(), 0);
    }
}
