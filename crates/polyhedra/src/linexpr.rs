//! Affine (linear + constant) expressions over a [`Space`].
//!
//! The coefficient row is stored inline for the spaces this compiler
//! actually works in (the paper's systems are 2–6 dimensions; with
//! processor, parameter and auxiliary dimensions they stay comfortably
//! under [`INLINE_DIMS`]) and spills to a heap `Vec` only above that
//! width. The hot loops of Fourier–Motzkin elimination therefore combine
//! rows without touching the allocator; the `stats` counters
//! (`allocs`, `inline_spills`) make the split observable.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::num;
use crate::stats;
use crate::{PolyError, Space};

/// Coefficient rows at most this wide live inline in the expression
/// (no heap allocation); wider rows spill to a `Vec`.
pub const INLINE_DIMS: usize = 12;

/// The coefficient storage: a fixed inline buffer for narrow rows, a heap
/// vector past [`INLINE_DIMS`]. The representation is canonical — a row of
/// length `<= INLINE_DIMS` is always `Inline` — so equality and hashing
/// over the logical slice agree with structural equality.
#[derive(Debug)]
enum Repr {
    Inline { len: u8, buf: [i128; INLINE_DIMS] },
    Heap(Vec<i128>),
}

impl Repr {
    fn zeros(n: usize) -> Repr {
        if n <= INLINE_DIMS {
            Repr::Inline {
                len: n as u8,
                buf: [0; INLINE_DIMS],
            }
        } else {
            stats::count_alloc();
            Repr::Heap(vec![0; n])
        }
    }

    fn as_slice(&self) -> &[i128] {
        match self {
            Repr::Inline { len, buf } => &buf[..usize::from(*len)],
            Repr::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [i128] {
        match self {
            Repr::Inline { len, buf } => &mut buf[..usize::from(*len)],
            Repr::Heap(v) => v,
        }
    }
}

impl Clone for Repr {
    fn clone(&self) -> Repr {
        match self {
            Repr::Inline { len, buf } => Repr::Inline {
                len: *len,
                buf: *buf,
            },
            Repr::Heap(v) => {
                stats::count_alloc();
                Repr::Heap(v.clone())
            }
        }
    }
}

/// An affine expression `c0 + Σ coeffs[k] * dim_k` over a space with a fixed
/// number of dimensions.
///
/// The expression does not own its space; operations on expressions from
/// different spaces are caught by length assertions.
///
/// # Examples
///
/// ```
/// use dmc_polyhedra::{LinExpr, Space, DimKind};
///
/// let s = Space::from_dims([("i", DimKind::Index), ("N", DimKind::Param)]);
/// // 2*i - N + 3
/// let e = LinExpr::from_coeffs(vec![2, -1], 3);
/// assert_eq!(e.eval(&[5, 4]).unwrap(), 2 * 5 - 4 + 3);
/// assert_eq!(e.display(&s).to_string(), "2i - N + 3");
/// ```
#[derive(Clone, Debug)]
pub struct LinExpr {
    repr: Repr,
    constant: i128,
}

/// Equality is over the logical coefficient slice plus the constant; the
/// canonical representation makes this agree with structural equality.
impl PartialEq for LinExpr {
    fn eq(&self, other: &Self) -> bool {
        self.constant == other.constant && self.coeffs() == other.coeffs()
    }
}
impl Eq for LinExpr {}

/// Hashes exactly what `Eq` compares: the coefficient slice (length, then
/// elements — the standard slice hash) and the constant.
impl Hash for LinExpr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.coeffs().hash(state);
        self.constant.hash(state);
    }
}

impl LinExpr {
    /// The zero expression over `n` dimensions.
    pub fn zero(n: usize) -> Self {
        LinExpr {
            repr: Repr::zeros(n),
            constant: 0,
        }
    }

    /// A constant expression over `n` dimensions.
    pub fn constant(n: usize, c: i128) -> Self {
        LinExpr {
            repr: Repr::zeros(n),
            constant: c,
        }
    }

    /// The expression `1 * dim` over `n` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= n`.
    pub fn var(n: usize, dim: usize) -> Self {
        let mut e = LinExpr::zero(n);
        e.set_coeff(dim, 1);
        e
    }

    /// Builds an expression from explicit coefficients and a constant.
    /// Narrow rows are copied into the inline buffer (the argument vector
    /// is dropped); wide rows keep the vector.
    pub fn from_coeffs(coeffs: Vec<i128>, constant: i128) -> Self {
        let repr = if coeffs.len() <= INLINE_DIMS {
            let mut buf = [0; INLINE_DIMS];
            buf[..coeffs.len()].copy_from_slice(&coeffs);
            Repr::Inline {
                len: coeffs.len() as u8,
                buf,
            }
        } else {
            Repr::Heap(coeffs)
        };
        LinExpr { repr, constant }
    }

    /// Builds an expression from a coefficient slice without allocating
    /// for narrow rows.
    pub fn from_slice(coeffs: &[i128], constant: i128) -> Self {
        let mut e = LinExpr::zero(coeffs.len());
        e.repr.as_mut_slice().copy_from_slice(coeffs);
        e.constant = constant;
        e
    }

    /// Number of dimensions this expression ranges over.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the expression has zero dimensions (it may still be a nonzero
    /// constant).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The coefficient of dimension `dim`.
    pub fn coeff(&self, dim: usize) -> i128 {
        self.coeffs()[dim]
    }

    /// Sets the coefficient of dimension `dim`.
    pub fn set_coeff(&mut self, dim: usize, v: i128) {
        self.repr.as_mut_slice()[dim] = v;
    }

    /// The constant term.
    pub fn constant_term(&self) -> i128 {
        self.constant
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, c: i128) {
        self.constant = c;
    }

    /// All coefficients, in dimension order.
    pub fn coeffs(&self) -> &[i128] {
        self.repr.as_slice()
    }

    /// True if every coefficient is zero (a constant expression).
    pub fn is_constant(&self) -> bool {
        self.coeffs().iter().all(|&c| c == 0)
    }

    /// True if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.is_constant()
    }

    /// Sum of two expressions over the same space.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    ///
    /// # Panics
    ///
    /// Panics if the expressions have different lengths.
    pub fn add(&self, other: &LinExpr) -> Result<LinExpr, PolyError> {
        assert_eq!(self.len(), other.len(), "space mismatch");
        let mut out = LinExpr::zero(self.len());
        let dst = out.repr.as_mut_slice();
        for (d, (a, b)) in self.coeffs().iter().zip(other.coeffs()).enumerate() {
            dst[d] = num::add(*a, *b)?;
        }
        out.constant = num::add(self.constant, other.constant)?;
        Ok(out)
    }

    /// Difference of two expressions over the same space.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    pub fn sub(&self, other: &LinExpr) -> Result<LinExpr, PolyError> {
        self.combine(1, other, -1)
    }

    /// The expression multiplied by scalar `k`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    pub fn scale(&self, k: i128) -> Result<LinExpr, PolyError> {
        let mut out = LinExpr::zero(self.len());
        let dst = out.repr.as_mut_slice();
        for (d, &a) in self.coeffs().iter().enumerate() {
            dst[d] = num::mul(a, k)?;
        }
        out.constant = num::mul(self.constant, k)?;
        Ok(out)
    }

    /// The fused row combination `a·self + b·other` in one pass — the
    /// Fourier–Motzkin inner loop (`c·lower + b·upper`) without the two
    /// intermediate expressions `scale` + `add` would build.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    ///
    /// # Panics
    ///
    /// Panics if the expressions have different lengths.
    pub fn combine(&self, a: i128, other: &LinExpr, b: i128) -> Result<LinExpr, PolyError> {
        assert_eq!(self.len(), other.len(), "space mismatch");
        let mut out = LinExpr::zero(self.len());
        let dst = out.repr.as_mut_slice();
        for (d, (x, y)) in self.coeffs().iter().zip(other.coeffs()).enumerate() {
            dst[d] = num::add(num::mul(*x, a)?, num::mul(*y, b)?)?;
        }
        out.constant = num::add(num::mul(self.constant, a)?, num::mul(other.constant, b)?)?;
        Ok(out)
    }

    /// Infallible scaling — panics on overflow. Convenience for tests and
    /// small literal computations.
    ///
    /// # Panics
    ///
    /// Panics on coefficient overflow.
    pub fn scaled(&self, k: i128) -> LinExpr {
        self.scale(k).expect("coefficient overflow")
    }

    /// Evaluates the expression at the given point.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.len()`.
    pub fn eval(&self, point: &[i128]) -> Result<i128, PolyError> {
        assert_eq!(point.len(), self.len(), "point dimension mismatch");
        let mut acc = self.constant;
        for (c, x) in self.coeffs().iter().zip(point) {
            acc = num::add(acc, num::mul(*c, *x)?)?;
        }
        Ok(acc)
    }

    /// Substitutes dimension `dim` with `replacement` (whose coefficient on
    /// `dim` must be zero), i.e. computes `self[dim := replacement]`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `replacement` itself references `dim` or the lengths differ.
    pub fn substitute(&self, dim: usize, replacement: &LinExpr) -> Result<LinExpr, PolyError> {
        assert_eq!(self.len(), replacement.len(), "space mismatch");
        assert_eq!(
            replacement.coeff(dim),
            0,
            "replacement references substituted dim"
        );
        let k = self.coeff(dim);
        if k == 0 {
            return Ok(self.clone());
        }
        let mut out = self.combine(1, replacement, k)?;
        out.set_coeff(dim, 0);
        Ok(out)
    }

    /// Extends the expression with `extra` zero-coefficient dimensions at the
    /// end. Counts an `inline_spills` when the widened row no longer fits
    /// the inline buffer.
    pub fn extend(&self, extra: usize) -> LinExpr {
        let n = self.len() + extra;
        if matches!(self.repr, Repr::Inline { .. }) && n > INLINE_DIMS {
            stats::count_inline_spill();
        }
        let mut out = LinExpr::zero(n);
        out.repr.as_mut_slice()[..self.len()].copy_from_slice(self.coeffs());
        out.constant = self.constant;
        out
    }

    /// Reorders/embeds the expression into a new space. `map[k]` gives the
    /// position in the new space of old dimension `k`.
    ///
    /// # Panics
    ///
    /// Panics if `map` is shorter than the expression or maps out of bounds.
    pub fn remap(&self, new_len: usize, map: &[usize]) -> LinExpr {
        assert!(map.len() >= self.len(), "remap table too short");
        if matches!(self.repr, Repr::Inline { .. }) && new_len > INLINE_DIMS {
            stats::count_inline_spill();
        }
        let mut out = LinExpr::zero(new_len);
        let dst = out.repr.as_mut_slice();
        for (k, &c) in self.coeffs().iter().enumerate() {
            if c != 0 {
                dst[map[k]] = c;
            }
        }
        out.constant = self.constant;
        out
    }

    /// Removes the dimension `dim` (whose coefficient must be zero).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient of `dim` is nonzero.
    pub fn drop_dim(&self, dim: usize) -> LinExpr {
        assert_eq!(self.coeff(dim), 0, "dropping a referenced dimension");
        let mut out = LinExpr::zero(self.len() - 1);
        let dst = out.repr.as_mut_slice();
        let src = self.coeffs();
        dst[..dim].copy_from_slice(&src[..dim]);
        dst[dim..].copy_from_slice(&src[dim + 1..]);
        out.constant = self.constant;
        out
    }

    /// Gcd of all coefficients (not the constant); 0 for constant expressions.
    pub fn content(&self) -> i128 {
        self.coeffs().iter().fold(0, |g, &c| num::gcd(g, c))
    }

    /// Renders the expression with dimension names from `space`.
    pub fn display<'a>(&'a self, space: &'a Space) -> DisplayLinExpr<'a> {
        DisplayLinExpr { expr: self, space }
    }
}

/// Helper returned by [`LinExpr::display`].
#[derive(Debug)]
pub struct DisplayLinExpr<'a> {
    expr: &'a LinExpr,
    space: &'a Space,
}

impl fmt::Display for DisplayLinExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (k, &c) in self.expr.coeffs().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = self.space.dim(k).name();
            if !wrote {
                if c == 1 {
                    write!(f, "{name}")?;
                } else if c == -1 {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{c}{name}")?;
                }
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {c}{name}")?;
                }
            } else if c == -1 {
                write!(f, " - {name}")?;
            } else {
                write!(f, " - {}{name}", -c)?;
            }
            wrote = true;
        }
        let c0 = self.expr.constant;
        if !wrote {
            write!(f, "{c0}")?;
        } else if c0 > 0 {
            write!(f, " + {c0}")?;
        } else if c0 < 0 {
            write!(f, " - {}", -c0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DimKind;

    fn space2() -> Space {
        Space::from_dims([("i", DimKind::Index), ("j", DimKind::Index)])
    }

    #[test]
    fn construction_and_eval() {
        let e = LinExpr::from_coeffs(vec![2, -3], 5);
        assert_eq!(e.eval(&[1, 1]).unwrap(), 4);
        assert_eq!(e.eval(&[0, 0]).unwrap(), 5);
        assert!(!e.is_constant());
        assert!(LinExpr::constant(2, 7).is_constant());
        assert!(LinExpr::zero(2).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = LinExpr::from_coeffs(vec![1, 2], 3);
        let b = LinExpr::from_coeffs(vec![4, -2], 1);
        assert_eq!(a.add(&b).unwrap(), LinExpr::from_coeffs(vec![5, 0], 4));
        assert_eq!(a.sub(&b).unwrap(), LinExpr::from_coeffs(vec![-3, 4], 2));
        assert_eq!(a.scale(-2).unwrap(), LinExpr::from_coeffs(vec![-2, -4], -6));
        assert_eq!(
            a.combine(3, &b, -1).unwrap(),
            LinExpr::from_coeffs(vec![-1, 8], 8)
        );
    }

    #[test]
    fn substitution() {
        // e = 2i + j + 1; substitute i := j - 3  =>  2j - 6 + j + 1 = 3j - 5
        let e = LinExpr::from_coeffs(vec![2, 1], 1);
        let r = LinExpr::from_coeffs(vec![0, 1], -3);
        let out = e.substitute(0, &r).unwrap();
        assert_eq!(out, LinExpr::from_coeffs(vec![0, 3], -5));
    }

    #[test]
    #[should_panic(expected = "replacement references")]
    fn substitution_self_reference_panics() {
        let e = LinExpr::var(2, 0);
        let r = LinExpr::var(2, 0);
        let _ = e.substitute(0, &r);
    }

    #[test]
    fn remap_and_extend() {
        let e = LinExpr::from_coeffs(vec![1, 2], 7);
        let big = e.remap(4, &[3, 0]);
        assert_eq!(big, LinExpr::from_coeffs(vec![2, 0, 0, 1], 7));
        assert_eq!(e.extend(2), LinExpr::from_coeffs(vec![1, 2, 0, 0], 7));
    }

    #[test]
    fn display_formatting() {
        let s = space2();
        assert_eq!(
            LinExpr::from_coeffs(vec![1, -1], 0).display(&s).to_string(),
            "i - j"
        );
        assert_eq!(
            LinExpr::from_coeffs(vec![-2, 0], 3).display(&s).to_string(),
            "-2i + 3"
        );
        assert_eq!(LinExpr::constant(2, 0).display(&s).to_string(), "0");
        assert_eq!(LinExpr::constant(2, -4).display(&s).to_string(), "-4");
    }

    #[test]
    fn content_gcd() {
        assert_eq!(LinExpr::from_coeffs(vec![4, -6], 3).content(), 2);
        assert_eq!(LinExpr::constant(2, 3).content(), 0);
    }

    /// The same arithmetic must agree bit-for-bit across the inline and
    /// spilled representations (the only difference is where the row
    /// lives); `from_slice` round-trips both.
    #[test]
    fn inline_and_heap_agree() {
        let narrow: Vec<i128> = (0..INLINE_DIMS as i128).collect();
        let wide: Vec<i128> = (0..INLINE_DIMS as i128 + 5).collect();
        for base in [narrow, wide] {
            let e = LinExpr::from_coeffs(base.clone(), 9);
            assert_eq!(e.len(), base.len());
            assert_eq!(e.coeffs(), &base[..]);
            assert_eq!(LinExpr::from_slice(&base, 9), e);
            let doubled = e.add(&e).unwrap();
            assert_eq!(doubled, e.scale(2).unwrap());
            assert_eq!(e.combine(2, &e, -1).unwrap(), e);
            let pt: Vec<i128> = base.iter().map(|&c| c % 3 - 1).collect();
            assert_eq!(doubled.eval(&pt).unwrap(), 2 * e.eval(&pt).unwrap(),);
        }
    }

    /// Growing an inline row past the buffer spills to the heap (counted)
    /// and keeps values; shrinking a spilled row back under the threshold
    /// re-canonicalizes to inline so equality/hash stay representation-free.
    #[test]
    fn spill_and_shrink_roundtrip() {
        let before = crate::stats::snapshot();
        let e = LinExpr::from_coeffs((0..INLINE_DIMS as i128).collect(), 1);
        let wide = e.extend(3);
        assert_eq!(wide.len(), INLINE_DIMS + 3);
        assert_eq!(wide.coeff(INLINE_DIMS - 1), INLINE_DIMS as i128 - 1);
        assert_eq!(wide.coeff(INLINE_DIMS + 2), 0);
        let d = crate::stats::snapshot().since(&before);
        assert!(
            d.inline_spills >= 1,
            "extend past the buffer must count a spill"
        );
        assert!(d.allocs >= 1, "the spilled row lives on the heap");

        let mut back = wide.clone();
        for _ in 0..3 {
            back = back.drop_dim(back.len() - 1);
        }
        assert_eq!(back, e, "slice equality is representation-agnostic");
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |x: &LinExpr| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&back), h(&e));
    }

    /// Overflow edges behave identically inline and spilled: checked
    /// arithmetic errors out rather than wrapping.
    #[test]
    fn overflow_edges_inline_and_spilled() {
        for n in [2usize, INLINE_DIMS + 2] {
            let mut a = LinExpr::zero(n);
            a.set_coeff(0, i128::MAX);
            assert!(a.add(&a).is_err(), "n={n}: add overflow");
            assert!(a.scale(2).is_err(), "n={n}: scale overflow");
            assert!(a.combine(2, &a, 0).is_err(), "n={n}: combine overflow");
            assert!(a.eval(&vec![2; n]).is_err(), "n={n}: eval overflow");
            let ok = a.combine(1, &a, 0).unwrap();
            assert_eq!(ok.coeff(0), i128::MAX, "n={n}: lossless path");
        }
    }
}
