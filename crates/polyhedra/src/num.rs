//! Exact integer helper arithmetic.
//!
//! All polyhedral computations in this crate use `i128` coefficients with
//! checked arithmetic. Fourier–Motzkin elimination multiplies constraint
//! rows together, so coefficients can grow quickly; every combination step
//! normalizes by the gcd of the row, which keeps magnitudes small for the
//! systems that arise from affine loop nests.

use crate::PolyError;

/// Greatest common divisor of two integers; `gcd(0, 0) == 0`.
///
/// The result is always non-negative.
///
/// # Examples
///
/// ```
/// assert_eq!(dmc_polyhedra::num::gcd(12, -8), 4);
/// assert_eq!(dmc_polyhedra::num::gcd(0, 5), 5);
/// ```
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple; `lcm(0, x) == 0`.
///
/// # Errors
///
/// Returns [`PolyError::Overflow`] if the product overflows `i128`.
pub fn lcm(a: i128, b: i128) -> Result<i128, PolyError> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd(a, b);
    (a / g)
        .checked_mul(b)
        .map(i128::abs)
        .ok_or(PolyError::Overflow)
}

/// Floor division: the largest integer `q` with `q * b <= a`. Requires `b > 0`.
///
/// # Panics
///
/// Panics if `b <= 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(dmc_polyhedra::num::div_floor(7, 2), 3);
/// assert_eq!(dmc_polyhedra::num::div_floor(-7, 2), -4);
/// ```
pub fn div_floor(a: i128, b: i128) -> i128 {
    assert!(b > 0, "div_floor requires a positive divisor");
    let q = a / b;
    if a % b < 0 {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: the smallest integer `q` with `q * b >= a`. Requires `b > 0`.
///
/// # Panics
///
/// Panics if `b <= 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(dmc_polyhedra::num::div_ceil(7, 2), 4);
/// assert_eq!(dmc_polyhedra::num::div_ceil(-7, 2), -3);
/// ```
pub fn div_ceil(a: i128, b: i128) -> i128 {
    assert!(b > 0, "div_ceil requires a positive divisor");
    let q = a / b;
    if a % b > 0 {
        q + 1
    } else {
        q
    }
}

/// Mathematical modulus with a non-negative result. Requires `b > 0`.
///
/// # Panics
///
/// Panics if `b <= 0`.
pub fn mod_floor(a: i128, b: i128) -> i128 {
    a - b * div_floor(a, b)
}

/// Checked addition lifted to [`PolyError`].
pub fn add(a: i128, b: i128) -> Result<i128, PolyError> {
    a.checked_add(b).ok_or(PolyError::Overflow)
}

/// Checked multiplication lifted to [`PolyError`].
pub fn mul(a: i128, b: i128) -> Result<i128, PolyError> {
    a.checked_mul(b).ok_or(PolyError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 999), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 5).unwrap(), 0);
        assert_eq!(lcm(-4, 6).unwrap(), 12);
    }

    #[test]
    fn lcm_overflow() {
        assert!(lcm(i128::MAX, i128::MAX - 1).is_err());
    }

    #[test]
    fn floor_ceil_div() {
        assert_eq!(div_floor(9, 3), 3);
        assert_eq!(div_floor(10, 3), 3);
        assert_eq!(div_floor(-10, 3), -4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(-10, 3), -3);
    }

    #[test]
    #[should_panic]
    fn div_floor_rejects_nonpositive() {
        div_floor(1, 0);
    }

    #[test]
    fn mod_floor_nonnegative() {
        assert_eq!(mod_floor(7, 3), 1);
        assert_eq!(mod_floor(-7, 3), 2);
        assert_eq!(mod_floor(6, 3), 0);
        assert_eq!(mod_floor(-6, 3), 0);
    }

    #[test]
    fn floor_div_inverse_property() {
        for a in -50..50i128 {
            for b in 1..8i128 {
                let q = div_floor(a, b);
                assert!(q * b <= a && (q + 1) * b > a, "a={a} b={b}");
                let c = div_ceil(a, b);
                assert!(c * b >= a && (c - 1) * b < a, "a={a} b={b}");
            }
        }
    }
}
