//! Conjunctions of affine constraints (convex integer polyhedra) and the
//! projection machinery of the paper's §5.1: Fourier–Motzkin elimination,
//! superfluous-constraint removal by the negation test, and integer
//! feasibility via equality elimination plus branch-and-bound.

use std::collections::HashSet;
use std::fmt;

use crate::cache::{self, CachedPoly, CanonicalKey, SeqKey};
use crate::constraint::Normalized;
use crate::ledger;
use crate::num;
use crate::stats;
use crate::{Constraint, ConstraintKind, LinExpr, PolyError, Space};

/// Answer of an integer-feasibility query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// An integer point exists.
    Feasible,
    /// No integer point exists.
    Infeasible,
    /// The solver could not decide within its budget (treated as feasible by
    /// conservative callers).
    Unknown,
}

impl Feasibility {
    /// `true` unless the system is definitely infeasible.
    pub fn possibly_feasible(&self) -> bool {
        !matches!(self, Feasibility::Infeasible)
    }
}

/// How a Fourier–Motzkin step combines a lower and an upper bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shadow {
    /// The real (rational) shadow: exact over the rationals, an
    /// over-approximation over the integers.
    Real,
    /// Pugh's dark shadow: any integer point of the dark shadow lifts to an
    /// integer point of the original system (an under-approximation).
    Dark,
}

/// A conjunction of affine constraints over a [`Space`].
///
/// The polyhedron normalizes every added constraint (gcd reduction, constant
/// tightening, equality divisibility test) and records contradictions, so an
/// obviously empty system short-circuits later queries.
///
/// # Examples
///
/// ```
/// use dmc_polyhedra::{Polyhedron, Space, DimKind, LinExpr, Constraint};
///
/// let s = Space::from_dims([("i", DimKind::Index), ("N", DimKind::Param)]);
/// let mut p = Polyhedron::universe(s);
/// // 0 <= i <= N
/// p.add(Constraint::ge(LinExpr::from_coeffs(vec![1, 0], 0)));
/// p.add(Constraint::ge(LinExpr::from_coeffs(vec![-1, 1], 0)));
/// assert!(p.contains(&[3, 10]).unwrap());
/// assert!(!p.contains(&[11, 10]).unwrap());
/// ```
#[derive(Clone)]
pub struct Polyhedron {
    space: Space,
    cons: Vec<Constraint>,
    contradiction: bool,
    /// Hash-backed dedup index for [`Polyhedron::add`]. Invariant: a subset
    /// of `cons` as a set; rebuilt (and `cons` deduplicated) lazily when the
    /// lengths disagree after direct constraint-list construction.
    index: HashSet<Constraint>,
}

impl PartialEq for Polyhedron {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space
            && self.cons == other.cons
            && self.contradiction == other.contradiction
    }
}

impl Eq for Polyhedron {}

impl Polyhedron {
    /// The unconstrained polyhedron over `space`.
    pub fn universe(space: Space) -> Self {
        Polyhedron {
            space,
            cons: Vec::new(),
            contradiction: false,
            index: HashSet::new(),
        }
    }

    /// The empty polyhedron over `space`.
    pub fn empty(space: Space) -> Self {
        Polyhedron {
            space,
            cons: Vec::new(),
            contradiction: true,
            index: HashSet::new(),
        }
    }

    /// Reassembles a polyhedron from the parts its accessors expose:
    /// [`Polyhedron::space`], [`Polyhedron::constraints`] and
    /// [`Polyhedron::is_obviously_empty`]. The constraint list is trusted
    /// verbatim — it must be one a `Polyhedron` previously held (already
    /// normalized and deduplicated), which is exactly what the byte codec
    /// stores — so no normalization pass runs and the round-trip is
    /// byte-identical.
    pub fn from_parts(space: Space, cons: Vec<Constraint>, contradiction: bool) -> Self {
        for c in &cons {
            assert_eq!(
                c.expr().len(),
                space.len(),
                "constraint space mismatch in from_parts"
            );
        }
        let index = cons.iter().cloned().collect();
        Polyhedron {
            space,
            cons,
            contradiction,
            index,
        }
    }

    /// The polyhedron's space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The constraints currently held (normalized, deduplicated).
    pub fn constraints(&self) -> &[Constraint] {
        &self.cons
    }

    /// Whether a contradiction was detected during normalization. Note that
    /// `false` does not imply feasibility; use [`Polyhedron::integer_feasibility`].
    pub fn is_obviously_empty(&self) -> bool {
        self.contradiction
    }

    /// Adds a constraint (normalizing it first). Duplicates are dropped via
    /// a hash index, so building a system of `n` constraints is O(n) rather
    /// than the O(n²) of a linear-scan dedup.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(
            c.expr().len(),
            self.space.len(),
            "constraint space mismatch"
        );
        match c.normalize() {
            Normalized::Tautology => {}
            Normalized::Contradiction => self.contradiction = true,
            Normalized::Constraint(n) => {
                if self.index.len() != self.cons.len() {
                    // Re-sync after direct constraint-list construction
                    // (extend_space / remap / redundancy removal build
                    // `cons` without touching the index); this also drops
                    // any exact duplicates those paths introduced.
                    let mut seen = HashSet::with_capacity(self.cons.len());
                    self.cons.retain(|c| seen.insert(c.clone()));
                    self.index = seen;
                }
                if self.index.insert(n.clone()) {
                    self.cons.push(n);
                }
            }
        }
    }

    /// An order-insensitive, hashable fingerprint of this polyhedron's
    /// constraint system (arity + sorted normalized rows). Two polyhedra
    /// with equal keys describe the same integer set regardless of
    /// dimension names; the feasibility memo cache is keyed on this.
    pub fn canonical_key(&self) -> CanonicalKey {
        let mut rows: Vec<(bool, Vec<i128>, i128)> = self
            .cons
            .iter()
            .map(|c| {
                (
                    c.is_eq(),
                    c.expr().coeffs().to_vec(),
                    c.expr().constant_term(),
                )
            })
            .collect();
        rows.sort_unstable();
        CanonicalKey {
            dims: self.space.len(),
            contradiction: self.contradiction,
            rows,
        }
    }

    /// Exact-sequence cache key (see [`crate::cache`] on why projection
    /// results must be keyed order-sensitively).
    fn seq_key(&self) -> SeqKey {
        SeqKey {
            dims: self.space.len(),
            contradiction: self.contradiction,
            rows: self.cons.clone(),
        }
    }

    /// Reconstitutes a cached result over this polyhedron's space.
    fn reconstitute_cached(&self, c: CachedPoly) -> Polyhedron {
        Polyhedron {
            space: self.space.clone(),
            cons: c.cons,
            contradiction: c.contradiction,
            index: HashSet::new(),
        }
    }

    /// Adds every constraint from an iterator.
    pub fn add_all<I: IntoIterator<Item = Constraint>>(&mut self, cs: I) {
        for c in cs {
            self.add(c);
        }
    }

    /// Conjunction of two polyhedra over the same space.
    ///
    /// # Panics
    ///
    /// Panics if the spaces differ.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.space, other.space, "space mismatch in intersect");
        let mut out = self.clone();
        out.contradiction |= other.contradiction;
        for c in &other.cons {
            out.add(c.clone());
        }
        out
    }

    /// Tests whether a point satisfies every constraint.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on evaluation overflow.
    pub fn contains(&self, point: &[i128]) -> Result<bool, PolyError> {
        if self.contradiction {
            return Ok(false);
        }
        for c in &self.cons {
            if !c.satisfied_by(point)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Substitutes dimension `dim` by an expression not referencing `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn substitute_dim(&self, dim: usize, e: &LinExpr) -> Result<Polyhedron, PolyError> {
        let mut out = Polyhedron::universe(self.space.clone());
        out.contradiction = self.contradiction;
        for c in &self.cons {
            out.add(c.substitute(dim, e)?);
        }
        Ok(out)
    }

    /// Returns a copy over a space with extra dimensions appended. Existing
    /// constraints are extended with zero coefficients.
    pub fn extend_space(&self, extra: &Space) -> Polyhedron {
        let space = self.space.product(extra);
        let n = space.len();
        let mut out = Polyhedron::universe(space);
        out.contradiction = self.contradiction;
        for c in &self.cons {
            let e = c.expr().extend(n - c.expr().len());
            out.cons.push(match c.kind() {
                ConstraintKind::Eq => Constraint::eq(e),
                ConstraintKind::Ge => Constraint::ge(e),
            });
        }
        out
    }

    /// Remaps the polyhedron into `new_space`; `map[k]` gives the position in
    /// `new_space` of this polyhedron's dimension `k`.
    pub fn remap(&self, new_space: Space, map: &[usize]) -> Polyhedron {
        let n = new_space.len();
        let mut out = Polyhedron::universe(new_space);
        out.contradiction = self.contradiction;
        for c in &self.cons {
            let e = c.expr().remap(n, map);
            out.cons.push(match c.kind() {
                ConstraintKind::Eq => Constraint::eq(e),
                ConstraintKind::Ge => Constraint::ge(e),
            });
        }
        out
    }

    // ------------------------------------------------------------------
    // Elimination (projection).
    // ------------------------------------------------------------------

    /// One Fourier–Motzkin step: removes every constraint mentioning `dim`,
    /// adding all lower/upper combinations. The result is the real (rational)
    /// shadow; over the integers it is an over-approximation.
    ///
    /// If an equality mentions `dim` it is used as the combination pivot,
    /// which is exact whenever its coefficient on `dim` is ±1.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on coefficient overflow.
    pub fn eliminate_dim(&self, dim: usize) -> Result<Polyhedron, PolyError> {
        self.eliminate_dim_shadow(dim, Shadow::Real)
    }

    fn eliminate_dim_shadow(&self, dim: usize, shadow: Shadow) -> Result<Polyhedron, PolyError> {
        stats::count_fm_step();
        let mut op = ledger::op(ledger::OpKind::FmStep, self.cons.len());
        op.set_dims_eliminated(1);
        let out = self.eliminate_dim_shadow_impl(dim, shadow)?;
        op.set_cons_out(out.cons.len());
        op.finish();
        Ok(out)
    }

    fn eliminate_dim_shadow_impl(
        &self,
        dim: usize,
        shadow: Shadow,
    ) -> Result<Polyhedron, PolyError> {
        let mut out = Polyhedron::universe(self.space.clone());
        out.contradiction = self.contradiction;
        if self.contradiction {
            return Ok(out);
        }

        // Prefer pivoting on an equality: exact when the pivot coefficient
        // is ±1, and never worse than pairing inequalities.
        if let Some(eq_idx) = self
            .cons
            .iter()
            .position(|c| c.is_eq() && c.coeff(dim).abs() == 1)
            .or_else(|| self.cons.iter().position(|c| c.is_eq() && c.involves(dim)))
        {
            let eq = &self.cons[eq_idx];
            let a = eq.coeff(dim);
            for (i, c) in self.cons.iter().enumerate() {
                if i == eq_idx {
                    continue;
                }
                let b = c.coeff(dim);
                if b == 0 {
                    out.add(c.clone());
                    continue;
                }
                // new = |a| * c - (b * sign(a)) * eq  — kills `dim`, keeps the
                // inequality direction because |a| > 0.
                let e = c.expr().combine(a.abs(), eq.expr(), -(b * a.signum()))?;
                out.add(match c.kind() {
                    ConstraintKind::Eq => Constraint::eq(e),
                    ConstraintKind::Ge => Constraint::ge(e),
                });
            }
            return Ok(out);
        }

        let mut lowers: Vec<&Constraint> = Vec::new(); // coeff > 0:  a*dim >= -rest
        let mut uppers: Vec<&Constraint> = Vec::new(); // coeff < 0: |a|*dim <= rest
        for c in &self.cons {
            let a = c.coeff(dim);
            if a == 0 {
                out.add(c.clone());
            } else if a > 0 {
                lowers.push(c);
            } else {
                uppers.push(c);
            }
        }
        for lo in &lowers {
            let b = lo.coeff(dim); // b > 0
            for up in &uppers {
                let c = -up.coeff(dim); // c > 0
                                        // b*dim + e_lo >= 0 and -c*dim + e_up >= 0
                                        //   =>  c*e_lo + b*e_up >= 0 (real shadow)
                let mut e = lo.expr().combine(c, up.expr(), b)?;
                if shadow == Shadow::Dark && b > 1 && c > 1 {
                    // Dark shadow: subtract (b-1)(c-1).
                    let adj = num::mul(b - 1, c - 1)?;
                    e.set_constant(e.constant_term() - adj);
                }
                out.add(Constraint::ge(e));
            }
        }
        Ok(out)
    }

    /// Eliminates `dims` producing an integer **under-approximation** of the
    /// projection: every integer point of the result lifts to an integer
    /// point of the original polyhedron. Unit-coefficient equalities and
    /// all-unit inequality sides are eliminated exactly; everything else
    /// uses Pugh's dark shadow. Useful when the projection will be
    /// *subtracted* from another set, where an over-approximation would be
    /// unsound.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn eliminate_dims_under(&self, dims: &[usize]) -> Result<Polyhedron, PolyError> {
        let mut cur = self.clone();
        for &d in dims {
            // Replace non-unit equalities involving d by inequality pairs so
            // the dark shadow applies; unit equalities pivot exactly.
            if let Some(eq) = cur
                .cons
                .iter()
                .find(|c| c.is_eq() && c.coeff(d).abs() == 1)
                .cloned()
            {
                let a = eq.coeff(d);
                let mut rest = eq.expr().clone();
                rest.set_coeff(d, 0);
                let repl = rest.scale(-a.signum())?;
                cur.cons.retain(|c| c != &eq);
                cur.index.clear();
                cur = cur.substitute_dim(d, &repl)?;
                continue;
            }
            let mut split = Polyhedron::universe(cur.space.clone());
            split.contradiction = cur.contradiction;
            for c in &cur.cons {
                if c.is_eq() && c.involves(d) {
                    split.add(Constraint::ge(c.expr().clone()));
                    split.add(Constraint::ge(c.expr().scale(-1)?));
                } else {
                    split.add(c.clone());
                }
            }
            // Exact when one side is all-unit; otherwise dark shadow.
            let mut unit_lo = true;
            let mut unit_up = true;
            for c in &split.cons {
                let a = c.coeff(d);
                if a > 1 {
                    unit_lo = false;
                } else if a < -1 {
                    unit_up = false;
                }
            }
            let shadow = if unit_lo || unit_up {
                Shadow::Real
            } else {
                Shadow::Dark
            };
            cur = split
                .eliminate_dim_shadow(d, shadow)?
                .remove_redundant_cheap();
        }
        Ok(cur)
    }

    /// Eliminates several dimensions (by name positions), choosing at each
    /// step the remaining dimension with the cheapest lower×upper pairing.
    ///
    /// The result still lives in the same space; the eliminated dimensions
    /// are simply unconstrained.
    ///
    /// Results are memoized per thread (keyed on the exact constraint
    /// sequence plus `dims`), so repeated projections of the same system —
    /// ubiquitous across LWT resolution and comm-set construction — are
    /// answered without re-running the elimination. Systems below the
    /// [`stats::cache_min_constraints`] size threshold skip the cache:
    /// they are re-solved faster than their key can be built and hashed.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn eliminate_dims(&self, dims: &[usize]) -> Result<Polyhedron, PolyError> {
        if !stats::cache_admits(self.cons.len()) {
            let mut op = ledger::op(ledger::OpKind::Projection, self.cons.len());
            op.set_dims_eliminated(dims.len());
            let out = self.eliminate_dims_uncached(dims)?;
            op.set_cons_out(out.cons.len());
            op.finish();
            return Ok(out);
        }
        let key = (self.seq_key(), dims.to_vec());
        if let Some(hit) = cache::proj_get(&key) {
            stats::count_proj_cache(true);
            ledger::record_hit(
                ledger::OpKind::Projection,
                self.cons.len(),
                hit.cons.len(),
                dims.len(),
                hit.charged,
            );
            return Ok(self.reconstitute_cached(hit));
        }
        stats::count_proj_cache(false);
        let mut op = ledger::op(ledger::OpKind::Projection, self.cons.len());
        op.set_dims_eliminated(dims.len());
        op.set_cache_miss();
        let out = self.eliminate_dims_uncached(dims)?;
        op.set_cons_out(out.cons.len());
        let charged = op.finish();
        cache::proj_put(
            key,
            CachedPoly {
                cons: out.cons.clone(),
                contradiction: out.contradiction,
                charged,
            },
        );
        Ok(out)
    }

    fn eliminate_dims_uncached(&self, dims: &[usize]) -> Result<Polyhedron, PolyError> {
        let mut cur = self.clone();
        let mut todo: Vec<usize> = dims.to_vec();
        while !todo.is_empty() {
            // Cost heuristic: fewest lower*upper combinations first.
            let (pos, &d) = todo
                .iter()
                .enumerate()
                .min_by_key(|(_, &d)| {
                    let mut lo = 0usize;
                    let mut up = 0usize;
                    let mut has_eq = false;
                    for c in &cur.cons {
                        let a = c.coeff(d);
                        if a == 0 {
                            continue;
                        }
                        if c.is_eq() {
                            has_eq = true;
                        } else if a > 0 {
                            lo += 1;
                        } else {
                            up += 1;
                        }
                    }
                    if has_eq {
                        0
                    } else {
                        lo * up + 1
                    }
                })
                .expect("todo not empty");
            todo.swap_remove(pos);
            cur = cur.eliminate_dim(d)?;
            cur = cur.remove_redundant_cheap();
        }
        Ok(cur)
    }

    /// Projects the polyhedron onto the dimensions in `keep` (in the given
    /// order), returning a polyhedron over a fresh space built from those
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn project_onto(&self, keep: &[usize]) -> Result<Polyhedron, PolyError> {
        let drop: Vec<usize> = (0..self.space.len())
            .filter(|d| !keep.contains(d))
            .collect();
        let eliminated = self.eliminate_dims(&drop)?;
        let mut new_space = Space::new();
        for &k in keep {
            new_space.add_dim(
                self.space.dim(k).name().to_owned(),
                self.space.dim(k).kind(),
            );
        }
        let mut out = Polyhedron::universe(new_space);
        out.contradiction = eliminated.contradiction;
        for c in &eliminated.cons {
            debug_assert!(drop.iter().all(|&d| c.coeff(d) == 0));
            let mut coeffs = Vec::with_capacity(keep.len());
            for &k in keep {
                coeffs.push(c.coeff(k));
            }
            let e = LinExpr::from_coeffs(coeffs, c.expr().constant_term());
            out.add(match c.kind() {
                ConstraintKind::Eq => Constraint::eq(e),
                ConstraintKind::Ge => Constraint::ge(e),
            });
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Redundancy removal.
    // ------------------------------------------------------------------

    /// Drops constraints that are syntactically dominated: duplicates, and
    /// inequalities with identical coefficient rows where one constant is
    /// tighter. Cheap (no elimination); used after every FM step.
    pub fn remove_redundant_cheap(&self) -> Polyhedron {
        let mut out = Polyhedron::universe(self.space.clone());
        out.contradiction = self.contradiction;
        'outer: for (i, c) in self.cons.iter().enumerate() {
            if c.is_eq() {
                out.cons.push(c.clone());
                continue;
            }
            for (j, d) in self.cons.iter().enumerate() {
                if i == j {
                    continue;
                }
                // d dominates c if same coefficients and d's constant <= c's
                // (d is tighter), keeping the first on ties.
                if !d.is_eq()
                    && d.expr().coeffs() == c.expr().coeffs()
                    && (d.expr().constant_term() < c.expr().constant_term()
                        || (d.expr().constant_term() == c.expr().constant_term() && j < i))
                {
                    continue 'outer;
                }
            }
            out.cons.push(c.clone());
        }
        out
    }

    /// Removes superfluous constraints by the paper's negation test (§5.1):
    /// replace a constraint with its negation; if the system then has no
    /// integer solution, the constraint was implied and can be dropped.
    ///
    /// Two cheap pre-filters run before the exact test on each constraint
    /// (when enabled via [`stats::set_prefilters_enabled`]):
    ///
    /// 1. a **rational bound check** — if the constraint's minimum over the
    ///    box implied by the other single-variable constraints is already
    ///    `>= 0`, it is implied and dropped without any feasibility query;
    /// 2. a **witness check** — the corner of that box minimizing the
    ///    constraint is tested against the negation probe; if it satisfies
    ///    the probe, the constraint is provably non-redundant and kept
    ///    without a branch-and-bound query.
    ///
    /// Results are memoized per thread; systems below the
    /// [`stats::cache_min_constraints`] size threshold skip the cache.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn remove_redundant(&self) -> Result<Polyhedron, PolyError> {
        if !stats::cache_admits(self.cons.len()) {
            let mut op = ledger::op(ledger::OpKind::Redundancy, self.cons.len());
            let (out, negations) = self.remove_redundant_uncached()?;
            op.set_negation_tests(negations);
            op.set_cons_out(out.cons.len());
            op.finish();
            return Ok(out);
        }
        let key = self.seq_key();
        if let Some(hit) = cache::redund_get(&key) {
            stats::count_redund_cache(true);
            ledger::record_hit(
                ledger::OpKind::Redundancy,
                self.cons.len(),
                hit.cons.len(),
                0,
                hit.charged,
            );
            return Ok(self.reconstitute_cached(hit));
        }
        stats::count_redund_cache(false);
        let mut op = ledger::op(ledger::OpKind::Redundancy, self.cons.len());
        op.set_cache_miss();
        let (out, negations) = self.remove_redundant_uncached()?;
        op.set_negation_tests(negations);
        op.set_cons_out(out.cons.len());
        let charged = op.finish();
        cache::redund_put(
            key,
            CachedPoly {
                cons: out.cons.clone(),
                contradiction: out.contradiction,
                charged,
            },
        );
        Ok(out)
    }

    /// Returns the cleaned polyhedron plus the number of exact negation
    /// tests run, so the enclosing ledger record can carry the count.
    fn remove_redundant_uncached(&self) -> Result<(Polyhedron, u64), PolyError> {
        let base = self.remove_redundant_cheap();
        if base.contradiction {
            return Ok((base, 0));
        }
        let prefilter = stats::prefilters_enabled();
        let n = self.space.len();
        let mut negations: u64 = 0;
        let mut kept: Vec<Constraint> = base.cons.clone();
        let mut i = 0;
        while i < kept.len() {
            if kept[i].is_eq() {
                i += 1;
                continue;
            }
            if prefilter {
                match prefilter_verdict(&kept, i, n) {
                    PreVerdict::Implied => {
                        stats::count_prefilter_drop();
                        kept.remove(i);
                        continue;
                    }
                    PreVerdict::Witnessed => {
                        stats::count_prefilter_keep();
                        i += 1;
                        continue;
                    }
                    PreVerdict::Inconclusive => {}
                }
            }
            stats::count_negation_test();
            negations += 1;
            let mut probe = Polyhedron::universe(self.space.clone());
            for (j, c) in kept.iter().enumerate() {
                if j == i {
                    probe.add(c.negate_ge());
                } else {
                    probe.add(c.clone());
                }
            }
            if probe.integer_feasibility()? == Feasibility::Infeasible {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        let mut out = Polyhedron::universe(self.space.clone());
        out.cons = kept;
        Ok((out, negations))
    }

    // ------------------------------------------------------------------
    // Feasibility.
    // ------------------------------------------------------------------

    /// Exact rational feasibility by complete Fourier–Motzkin elimination.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn is_rational_feasible(&self) -> Result<bool, PolyError> {
        if self.contradiction {
            return Ok(false);
        }
        let all: Vec<usize> = (0..self.space.len()).collect();
        let p = self.eliminate_dims(&all)?;
        Ok(!p.contradiction)
    }

    /// Integer feasibility: unit-coefficient equality substitution, Pugh's
    /// exact equality elimination for the rest, then Fourier–Motzkin with the
    /// real/dark shadow pair and bounded branch-and-bound in the gray zone.
    ///
    /// All dimensions are treated existentially. The branch-and-bound
    /// budget comes from [`stats::feasibility_budget`] (settable via
    /// [`stats::set_feasibility_budget`]); definite answers are memoized
    /// per thread, keyed on [`Polyhedron::canonical_key`], while `Unknown`
    /// answers are never cached (they depend on the budget).
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn integer_feasibility(&self) -> Result<Feasibility, PolyError> {
        self.integer_feasibility_with_budget(stats::feasibility_budget())
    }

    /// [`Polyhedron::integer_feasibility`] with an explicit branch-and-bound
    /// budget. Cached answers may still be returned (a definite answer is
    /// correct under any budget).
    pub fn integer_feasibility_with_budget(&self, budget: u32) -> Result<Feasibility, PolyError> {
        stats::count_feasibility_call();
        if !stats::cache_admits(self.cons.len()) {
            let mut op = ledger::op(ledger::OpKind::Feasibility, self.cons.len());
            let mut b = budget;
            let f = self.integer_feasibility_budget(&mut b)?;
            // This is the sole entry to the recursion and every node shares
            // one budget, so the budget delta is exactly the nodes visited.
            op.set_bnb_nodes(u64::from(budget - b));
            op.finish();
            if f == Feasibility::Unknown {
                stats::count_feasibility_unknown();
            }
            return Ok(f);
        }
        let key = self.canonical_key();
        if let Some((f, charged)) = cache::feas_get(&key) {
            stats::count_feas_cache(true);
            ledger::record_hit(ledger::OpKind::Feasibility, self.cons.len(), 0, 0, charged);
            return Ok(f);
        }
        stats::count_feas_cache(false);
        let mut op = ledger::op(ledger::OpKind::Feasibility, self.cons.len());
        op.set_cache_miss();
        let mut b = budget;
        let f = self.integer_feasibility_budget(&mut b)?;
        op.set_bnb_nodes(u64::from(budget - b));
        let charged = op.finish();
        if f == Feasibility::Unknown {
            stats::count_feasibility_unknown();
        } else {
            cache::feas_put(key, (f, charged));
        }
        Ok(f)
    }

    fn integer_feasibility_budget(&self, budget: &mut u32) -> Result<Feasibility, PolyError> {
        if *budget == 0 {
            return Ok(Feasibility::Unknown);
        }
        *budget -= 1;
        stats::count_bnb_node();
        if self.contradiction {
            return Ok(Feasibility::Infeasible);
        }
        if self.cons.is_empty() {
            return Ok(Feasibility::Feasible);
        }
        if let Some(f) = self.quick_verdict() {
            return Ok(f);
        }

        // Step 1: eliminate equalities exactly.
        let mut cur = self.clone();
        loop {
            if cur.contradiction {
                return Ok(Feasibility::Infeasible);
            }
            let Some(eq_idx) = cur.cons.iter().position(Constraint::is_eq) else {
                break;
            };
            let eq = cur.cons[eq_idx].clone();
            // Find the dim with minimal |coeff| in this equality.
            let mut best: Option<(usize, i128)> = None;
            for d in 0..cur.space.len() {
                let a = eq.coeff(d);
                if a != 0 && best.is_none_or(|(_, b)| a.abs() < b.abs()) {
                    best = Some((d, a));
                }
            }
            let Some((d, a)) = best else {
                // Constant equality; normalization should have caught it.
                return Ok(Feasibility::Infeasible);
            };
            if a.abs() == 1 {
                // d = -sign(a) * (eq - a*d): exact integer substitution.
                let mut rest = eq.expr().clone();
                rest.set_coeff(d, 0);
                let replacement = rest.scale(-a.signum())?;
                cur.cons.remove(eq_idx);
                cur.index.clear();
                cur = cur.substitute_dim(d, &replacement)?;
            } else {
                // Pugh's transformation: introduce sigma with
                //   sum mod_hat(a_i, m) x_i + mod_hat(c, m) == m * sigma,
                // where m = |a_k| + 1. The new equality has coefficient
                // -sign(a_k) on x_k (because mod_hat(a_k, m) = -sign(a_k)),
                // so we can substitute x_k away immediately; the original
                // equality is rewritten with strictly smaller coefficients,
                // guaranteeing progress.
                let m = a.abs() + 1;
                let mod_hat = |v: i128| -> i128 {
                    let r = num::mod_floor(v, m);
                    if r * 2 >= m {
                        r - m
                    } else {
                        r
                    }
                };
                let sigma = cur.add_dim_internal();
                let n = cur.space.len();
                let mut e = LinExpr::zero(n);
                for k in 0..n - 1 {
                    e.set_coeff(k, mod_hat(eq.coeff(k)));
                }
                e.set_constant(mod_hat(eq.expr().constant_term()));
                e.set_coeff(sigma, -m);
                // e == 0 with e's coefficient on d equal to -sign(a):
                //   x_d = -sign(a) * (e - coeff_d * x_d)  ... i.e. solve e for d.
                let cd = e.coeff(d);
                debug_assert_eq!(cd, -a.signum());
                let mut rest = e;
                rest.set_coeff(d, 0);
                let replacement = rest.scale(-cd.signum())?;
                cur = cur.substitute_dim(d, &replacement)?;
                if cur.contradiction {
                    return Ok(Feasibility::Infeasible);
                }
            }
        }

        // Step 2: inequalities only. Eliminate with real + dark shadows.
        if cur.cons.is_empty() {
            return Ok(Feasibility::Feasible);
        }
        // Pick the cheapest variable that is actually constrained.
        let mut target: Option<(usize, usize, bool)> = None; // (dim, cost, exact)
        for d in 0..cur.space.len() {
            let mut lo = 0usize;
            let mut up = 0usize;
            let mut unit_lo = true;
            let mut unit_up = true;
            for c in &cur.cons {
                let a = c.coeff(d);
                if a > 0 {
                    lo += 1;
                    if a != 1 {
                        unit_lo = false;
                    }
                } else if a < 0 {
                    up += 1;
                    if a != -1 {
                        unit_up = false;
                    }
                }
            }
            if lo + up == 0 {
                continue;
            }
            // Elimination is integer-exact when all lower or all upper
            // coefficients are +/-1 (the dark and real shadows coincide).
            let exact = unit_lo || unit_up;
            let cost = lo * up;
            let better = match target {
                None => true,
                Some((_, c0, e0)) => (exact && !e0) || (exact == e0 && cost < c0),
            };
            if better {
                target = Some((d, cost, exact));
            }
        }
        let Some((d, _, exact)) = target else {
            // No variable appears in any constraint, yet constraints remain:
            // all would be constants, removed by normalization.
            return Ok(Feasibility::Feasible);
        };

        let real = cur
            .eliminate_dim_shadow(d, Shadow::Real)?
            .remove_redundant_cheap();
        let real_answer = real.integer_feasibility_budget(budget)?;
        if real_answer == Feasibility::Infeasible {
            return Ok(Feasibility::Infeasible);
        }
        if exact {
            return Ok(real_answer);
        }
        let dark = cur
            .eliminate_dim_shadow(d, Shadow::Dark)?
            .remove_redundant_cheap();
        if dark.integer_feasibility_budget(budget)? == Feasibility::Feasible {
            return Ok(Feasibility::Feasible);
        }

        // Gray zone: branch and bound on `d` if it has constant bounds.
        if let Some((lo, hi)) = cur.constant_bounds(d)? {
            if hi - lo > 4_096 {
                return Ok(Feasibility::Unknown);
            }
            for v in lo..=hi {
                let fixed = cur.substitute_dim(d, &LinExpr::constant(cur.space.len(), v))?;
                match fixed.integer_feasibility_budget(budget)? {
                    Feasibility::Feasible => return Ok(Feasibility::Feasible),
                    Feasibility::Unknown => return Ok(Feasibility::Unknown),
                    Feasibility::Infeasible => {}
                }
            }
            return Ok(Feasibility::Infeasible);
        }
        Ok(Feasibility::Unknown)
    }

    /// A deterministic pre-solve run at every node of the feasibility
    /// recursion. It derives a per-dimension integer box by bounds
    /// propagation over all constraints (round count capped at `dims + 4`)
    /// and answers:
    ///
    /// * `Infeasible` when the box is contradictory (some dimension's lower
    ///   bound exceeds its upper bound — every propagated bound is implied
    ///   by the system, so this is an exact proof);
    /// * `Feasible` when no multi-variable constraint exists (each
    ///   dimension is then independently satisfiable), or when one of a few
    ///   deterministic candidate points — box-clamped corners — verifies
    ///   exactly via [`Polyhedron::contains`].
    ///
    /// Sound and answer-preserving: it only short-circuits elimination work
    /// the full recursion would have spent reaching the same verdict, so
    /// downstream answers (schedules, redundancy removals, explain reports)
    /// are unchanged — only the charged branch-and-bound node counts
    /// shrink. Being a pure function of the queried system, the saving is
    /// identical across runs, worker counts, and cache states.
    fn quick_verdict(&self) -> Option<Feasibility> {
        let n = self.space.len();
        let mut lo: Vec<Option<i128>> = vec![None; n];
        let mut hi: Vec<Option<i128>> = vec![None; n];
        // Integer bounds propagation (a bounded presolve in the spirit of
        // the Omega test's tightening pass): a constraint Σ aₖxₖ + b ≥ 0
        // implies a_d·x_d ≥ -b - max(Σ_{k≠d} aₖxₖ) over the current box,
        // and an equality also bounds from the other side via the box
        // minimum. Divisions round toward integrality, so every derived
        // bound is implied by the system — an empty box is an exact
        // infeasibility proof. The round count is capped; propagation is
        // monotone, so stopping early only weakens the box, never the
        // soundness.
        let mut multi = false;
        for round in 0..n + 4 {
            let mut changed = false;
            for c in &self.cons {
                for d in 0..n {
                    let a = c.coeff(d);
                    if a == 0 {
                        continue;
                    }
                    let mut smax: Option<i128> = Some(0);
                    let mut smin: Option<i128> = Some(0);
                    for k in 0..n {
                        let ak = c.coeff(k);
                        if k == d || ak == 0 {
                            continue;
                        }
                        if round == 0 {
                            multi = true;
                        }
                        let fold = |s: Option<i128>, bound: Option<i128>| {
                            s.zip(bound)
                                .and_then(|(s, v)| ak.checked_mul(v).and_then(|t| s.checked_add(t)))
                        };
                        smax = fold(smax, if ak > 0 { hi[k] } else { lo[k] });
                        smin = fold(smin, if ak > 0 { lo[k] } else { hi[k] });
                    }
                    let b = c.expr().constant_term();
                    // e ≥ 0 direction: a·x_d ≥ -b - smax.
                    if let Some(t) = smax.and_then(|s| b.checked_neg()?.checked_sub(s)) {
                        if a > 0 {
                            let v = num::div_ceil(t, a);
                            if lo[d].is_none_or(|x| v > x) {
                                lo[d] = Some(v);
                                changed = true;
                            }
                        } else if let Some(nt) = t.checked_neg() {
                            let v = num::div_floor(nt, -a);
                            if hi[d].is_none_or(|x| v < x) {
                                hi[d] = Some(v);
                                changed = true;
                            }
                        }
                    }
                    // e ≤ 0 direction (equalities): a·x_d ≤ -b - smin.
                    if c.is_eq() {
                        if let Some(t) = smin.and_then(|s| b.checked_neg()?.checked_sub(s)) {
                            if a > 0 {
                                let v = num::div_floor(t, a);
                                if hi[d].is_none_or(|x| v < x) {
                                    hi[d] = Some(v);
                                    changed = true;
                                }
                            } else if let Some(nt) = t.checked_neg() {
                                let v = num::div_ceil(nt, -a);
                                if lo[d].is_none_or(|x| v > x) {
                                    lo[d] = Some(v);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            for d in 0..n {
                if let (Some(l), Some(h)) = (lo[d], hi[d]) {
                    if l > h {
                        return Some(Feasibility::Infeasible);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if !multi {
            return Some(Feasibility::Feasible);
        }
        // Candidate witnesses: three bases (origin, lower corner, upper
        // corner) clamped into the box, each verified exactly. Overflow in
        // the verification simply skips the candidate.
        let mut pt = vec![0i128; n];
        for base in 0..3u8 {
            for (d, p) in pt.iter_mut().enumerate() {
                let mut v = match base {
                    0 => 0,
                    1 => lo[d].or(hi[d]).unwrap_or(0),
                    _ => hi[d].or(lo[d]).unwrap_or(0),
                };
                if let Some(l) = lo[d] {
                    v = v.max(l);
                }
                if let Some(h) = hi[d] {
                    v = v.min(h);
                }
                *p = v;
            }
            if matches!(self.contains(&pt), Ok(true)) {
                return Some(Feasibility::Feasible);
            }
        }
        None
    }

    /// Computes constant integer bounds for dimension `d` by eliminating all
    /// other dimensions (rationally) and reading off the tightest constant
    /// bounds, if both exist.
    fn constant_bounds(&self, d: usize) -> Result<Option<(i128, i128)>, PolyError> {
        let others: Vec<usize> = (0..self.space.len()).filter(|&k| k != d).collect();
        let only_d = self.eliminate_dims(&others)?;
        let mut lo: Option<i128> = None;
        let mut hi: Option<i128> = None;
        for c in &only_d.cons {
            let a = c.coeff(d);
            let b = c.expr().constant_term();
            if a == 0 {
                continue;
            }
            // An equality bounds the dimension from both sides.
            if a > 0 || c.is_eq() {
                let (aa, bb) = if a > 0 { (a, b) } else { (-a, -b) };
                let v = num::div_ceil(-bb, aa);
                lo = Some(lo.map_or(v, |x| x.max(v)));
            }
            if a < 0 || c.is_eq() {
                let (aa, bb) = if a < 0 { (-a, b) } else { (a, -b) };
                let v = num::div_floor(bb, aa);
                hi = Some(hi.map_or(v, |x| x.min(v)));
            }
        }
        Ok(match (lo, hi) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        })
    }

    fn add_dim_internal(&mut self) -> usize {
        self.index.clear();
        let d = self.space.add_aux();
        for c in &mut self.cons {
            let e = c.expr().extend(1);
            *c = match c.kind() {
                ConstraintKind::Eq => Constraint::eq(e),
                ConstraintKind::Ge => Constraint::ge(e),
            };
        }
        d
    }

    // ------------------------------------------------------------------
    // Set difference.
    // ------------------------------------------------------------------

    /// Computes `self \ other` as a list of disjoint convex pieces.
    ///
    /// Piece `k` is `self ∧ other.c_0 ∧ … ∧ other.c_{k-1} ∧ ¬other.c_k`.
    /// An equality `e == 0` contributes two pieces (`e >= 1` and `-e >= 1`).
    /// Pieces that are obviously or provably empty are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    ///
    /// # Panics
    ///
    /// Panics if the spaces differ.
    pub fn subtract(&self, other: &Polyhedron) -> Result<Vec<Polyhedron>, PolyError> {
        assert_eq!(self.space, other.space, "space mismatch in subtract");
        if self.contradiction {
            return Ok(Vec::new());
        }
        if other.contradiction {
            return Ok(vec![self.clone()]);
        }
        // Disjoint sets subtract to the original, in one piece.
        if self.intersect(other).integer_feasibility()? == Feasibility::Infeasible {
            return Ok(vec![self.clone()]);
        }
        let mut pieces = Vec::new();
        let mut prefix = self.clone();
        for c in &other.cons {
            match c.kind() {
                ConstraintKind::Ge => {
                    let mut piece = prefix.clone();
                    piece.add(c.negate_ge());
                    if piece.integer_feasibility()?.possibly_feasible() {
                        pieces.push(piece);
                    }
                    prefix.add(c.clone());
                }
                ConstraintKind::Eq => {
                    // ¬(e == 0) is e >= 1 or e <= -1.
                    let mut above = prefix.clone();
                    let mut e_hi = c.expr().clone();
                    e_hi.set_constant(e_hi.constant_term() - 1);
                    above.add(Constraint::ge(e_hi));
                    if above.integer_feasibility()?.possibly_feasible() {
                        pieces.push(above);
                    }
                    let mut below = prefix.clone();
                    let mut e_lo = c.expr().scaled(-1);
                    e_lo.set_constant(e_lo.constant_term() - 1);
                    below.add(Constraint::ge(e_lo));
                    if below.integer_feasibility()?.possibly_feasible() {
                        pieces.push(below);
                    }
                    prefix.add(c.clone());
                }
            }
            if prefix.contradiction {
                break;
            }
        }
        Ok(pieces)
    }

    // ------------------------------------------------------------------
    // Point enumeration (for tests and small exhaustive checks).
    // ------------------------------------------------------------------

    /// Enumerates every integer point of the polyhedron, provided all
    /// dimensions can be given constant bounds; gives up (returns `None`)
    /// otherwise or when more than `limit` points would be produced.
    ///
    /// Points are produced in lexicographic dimension order.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn enumerate_points(&self, limit: usize) -> Result<Option<Vec<Vec<i128>>>, PolyError> {
        if self.contradiction {
            return Ok(Some(Vec::new()));
        }
        let n = self.space.len();
        let mut ranges = Vec::with_capacity(n);
        for d in 0..n {
            match self.constant_bounds(d)? {
                Some((lo, hi)) => ranges.push((lo, hi)),
                None => return Ok(None),
            }
        }
        let mut out = Vec::new();
        let mut point = vec![0i128; n];
        fn rec(
            p: &Polyhedron,
            ranges: &[(i128, i128)],
            point: &mut Vec<i128>,
            d: usize,
            out: &mut Vec<Vec<i128>>,
            limit: usize,
        ) -> Result<bool, PolyError> {
            if d == ranges.len() {
                if p.contains(point)? {
                    if out.len() >= limit {
                        return Ok(false);
                    }
                    out.push(point.clone());
                }
                return Ok(true);
            }
            for v in ranges[d].0..=ranges[d].1 {
                point[d] = v;
                if !rec(p, ranges, point, d + 1, out, limit)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        if rec(self, &ranges, &mut point, 0, &mut out, limit)? {
            Ok(Some(out))
        } else {
            Ok(None)
        }
    }
}

/// Outcome of the cheap redundancy pre-filters on one constraint.
enum PreVerdict {
    /// The constraint is implied by the box of the other constraints.
    Implied,
    /// A verified integer point satisfies the negation probe: the
    /// constraint is definitely not redundant.
    Witnessed,
    /// Neither filter fired; run the exact negation test.
    Inconclusive,
}

/// Constant per-dimension bounds derivable from the *single-variable*
/// constraints in `kept`, excluding index `skip`. Mirrors the bound
/// extraction of `constant_bounds`, but without any elimination.
fn box_bounds(
    kept: &[Constraint],
    n: usize,
    skip: usize,
) -> (Vec<Option<i128>>, Vec<Option<i128>>) {
    let mut lo: Vec<Option<i128>> = vec![None; n];
    let mut hi: Vec<Option<i128>> = vec![None; n];
    for (j, c) in kept.iter().enumerate() {
        if j == skip {
            continue;
        }
        let mut single: Option<usize> = None;
        let mut multi = false;
        for d in 0..n {
            if c.coeff(d) != 0 {
                if single.is_some() {
                    multi = true;
                    break;
                }
                single = Some(d);
            }
        }
        if multi {
            continue;
        }
        let Some(d) = single else { continue };
        let a = c.coeff(d);
        let b = c.expr().constant_term();
        // a*x + b >= 0 (or == 0): lower bound when a > 0, upper when a < 0,
        // both for an equality.
        if a > 0 || c.is_eq() {
            let (aa, bb) = if a > 0 { (a, b) } else { (-a, -b) };
            let v = num::div_ceil(-bb, aa);
            lo[d] = Some(lo[d].map_or(v, |x| x.max(v)));
        }
        if a < 0 || c.is_eq() {
            let (aa, bb) = if a < 0 { (-a, b) } else { (a, -b) };
            let v = num::div_floor(bb, aa);
            hi[d] = Some(hi[d].map_or(v, |x| x.min(v)));
        }
    }
    (lo, hi)
}

/// The two cheap checks run before the exact negation test on `kept[i]`:
/// rational bound implication (drop) and a verified witness of the negation
/// probe (keep). Any overflow or missing bound degrades to `Inconclusive` —
/// the filters only ever *skip* exact work, never change the answer.
fn prefilter_verdict(kept: &[Constraint], i: usize, n: usize) -> PreVerdict {
    let c = &kept[i];
    let (lo, hi) = box_bounds(kept, n, i);

    // (1) Minimum of c's expression over the box: if it is >= 0, the other
    // constraints alone imply c, so c is superfluous.
    let mut min: Option<i128> = Some(c.expr().constant_term());
    for d in 0..n {
        let a = c.coeff(d);
        if a == 0 {
            continue;
        }
        let bound = if a > 0 { lo[d] } else { hi[d] };
        min = match (min, bound) {
            (Some(m), Some(v)) => num::mul(a, v).ok().and_then(|t| m.checked_add(t)),
            _ => None,
        };
        if min.is_none() {
            break;
        }
    }
    if let Some(m) = min {
        if m >= 0 {
            return PreVerdict::Implied;
        }
    }

    // (2) Witness corners: a small set of deterministic candidate points;
    // any one that violates c while satisfying every other constraint is
    // an integer witness of the negation probe, proving non-redundancy
    // exactly. The base corner minimizes c over the box; the adjusted
    // candidates then move one dimension at a time to c's violation
    // threshold (the value closest to satisfying c that still violates
    // it), which keeps the point as deep inside the other constraints as
    // possible.
    let witnesses = |pt: &[i128]| -> bool {
        matches!(c.satisfied_by(pt), Ok(false))
            && kept
                .iter()
                .enumerate()
                .all(|(j, o)| j == i || matches!(o.satisfied_by(pt), Ok(true)))
    };
    let mut base = vec![0i128; n];
    for d in 0..n {
        let a = c.coeff(d);
        let prefer = if a > 0 {
            lo[d]
        } else if a < 0 {
            hi[d]
        } else {
            None
        };
        let mut v = prefer.unwrap_or(0);
        if let Some(l) = lo[d] {
            v = v.max(l);
        }
        if let Some(h) = hi[d] {
            v = v.min(h);
        }
        base[d] = v;
    }
    if witnesses(&base) {
        return PreVerdict::Witnessed;
    }
    for d in 0..n {
        let a = c.coeff(d);
        if a == 0 {
            continue;
        }
        // Solve a·x <= -1 - rest for the threshold x, where rest is c's
        // value at the base corner with dimension d zeroed out.
        let Ok(at_base) = c.expr().eval(&base) else {
            continue;
        };
        let Some(rest) = num::mul(a, base[d])
            .ok()
            .and_then(|t| at_base.checked_sub(t))
        else {
            continue;
        };
        let Some(t) = (-1i128).checked_sub(rest) else {
            continue;
        };
        let x = if a > 0 {
            num::div_floor(t, a)
        } else {
            num::div_ceil(-t, -a)
        };
        if x == base[d] {
            continue;
        }
        let mut pt = base.clone();
        pt[d] = x;
        if witnesses(&pt) {
            return PreVerdict::Witnessed;
        }
    }
    PreVerdict::Inconclusive
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polyhedron{} {{ ", self.space)?;
        if self.contradiction {
            write!(f, "false ")?;
        }
        for (i, c) in self.cons.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{}", c.display(&self.space))?;
        }
        write!(f, " }}")
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.contradiction {
            return write!(f, "false");
        }
        if self.cons.is_empty() {
            return write!(f, "true");
        }
        for (i, c) in self.cons.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{}", c.display(&self.space))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DimKind;

    fn sp(names: &[&str]) -> Space {
        Space::from_dims(names.iter().map(|&n| (n, DimKind::Index)))
    }

    fn ge(coeffs: Vec<i128>, c: i128) -> Constraint {
        Constraint::ge(LinExpr::from_coeffs(coeffs, c))
    }

    fn eq(coeffs: Vec<i128>, c: i128) -> Constraint {
        Constraint::eq(LinExpr::from_coeffs(coeffs, c))
    }

    #[test]
    fn contains_and_contradiction() {
        let mut p = Polyhedron::universe(sp(&["x"]));
        p.add(ge(vec![1], 0)); // x >= 0
        p.add(ge(vec![-1], 5)); // x <= 5
        assert!(p.contains(&[3]).unwrap());
        assert!(!p.contains(&[6]).unwrap());
        p.add(ge(vec![0], -1)); // -1 >= 0
        assert!(p.is_obviously_empty());
    }

    #[test]
    fn fm_eliminate_simple() {
        // x >= 0, y >= x + 2, y <= 7  => eliminating y: x + 2 <= 7.
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(ge(vec![1, 0], 0));
        p.add(ge(vec![-1, 1], -2)); // y - x - 2 >= 0
        p.add(ge(vec![0, -1], 7)); // 7 - y >= 0
        let q = p.eliminate_dim(1).unwrap();
        assert!(q.contains(&[5, 0]).unwrap());
        assert!(!q.contains(&[6, 0]).unwrap());
    }

    #[test]
    fn fm_equality_pivot() {
        // y == 2x + 1, 0 <= y <= 9 — eliminating y gives 0 <= 2x+1 <= 9.
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(eq(vec![2, -1], 1)); // 2x - y + 1 == 0
        p.add(ge(vec![0, 1], 0));
        p.add(ge(vec![0, -1], 9));
        let q = p.eliminate_dim(1).unwrap();
        assert!(q.contains(&[0, 0]).unwrap());
        assert!(q.contains(&[4, 0]).unwrap());
        assert!(!q.contains(&[5, 0]).unwrap());
        assert!(!q.contains(&[-1, 0]).unwrap());
    }

    #[test]
    fn rational_vs_integer_feasibility() {
        // 2x == 1 is rationally feasible but integer infeasible; the
        // normalizer already rejects it.
        let mut p = Polyhedron::universe(sp(&["x"]));
        p.add(eq(vec![2], -1));
        assert_eq!(p.integer_feasibility().unwrap(), Feasibility::Infeasible);

        // 3 <= 2x <= 3: rational point x = 1.5, no integer point.
        let mut p = Polyhedron::universe(sp(&["x"]));
        p.add(ge(vec![2], -3)); // 2x >= 3
        p.add(ge(vec![-2], 3)); // 2x <= 3
        assert_eq!(p.integer_feasibility().unwrap(), Feasibility::Infeasible);
    }

    #[test]
    fn integer_feasible_with_witnessable_point() {
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(ge(vec![1, 0], 0));
        p.add(ge(vec![0, 1], 0));
        p.add(ge(vec![-1, -1], 10)); // x + y <= 10
        assert_eq!(p.integer_feasibility().unwrap(), Feasibility::Feasible);
    }

    #[test]
    fn pugh_equality_elimination() {
        // 3x + 5y == 7 has integer solutions (x=4, y=-1).
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(eq(vec![3, 5], -7));
        assert_eq!(p.integer_feasibility().unwrap(), Feasibility::Feasible);

        // 6x + 10y == 7 has none (gcd 2 does not divide 7).
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(eq(vec![6, 10], -7));
        assert_eq!(p.integer_feasibility().unwrap(), Feasibility::Infeasible);
    }

    #[test]
    fn dark_shadow_gray_zone() {
        // Classic Omega example: 0 <= x, 2y <= x <= 2y + 1 with x odd-ish
        // windows; use: 1 <= x <= 2, x == 2y -> y in {0.5, 1} -> feasible
        // at x=2,y=1.
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(ge(vec![1, 0], -1));
        p.add(ge(vec![-1, 0], 2));
        p.add(eq(vec![1, -2], 0));
        assert_eq!(p.integer_feasibility().unwrap(), Feasibility::Feasible);

        // x == 2y, x == 3, no integer y.
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(eq(vec![1, -2], 0));
        p.add(eq(vec![1, 0], -3));
        assert_eq!(p.integer_feasibility().unwrap(), Feasibility::Infeasible);
    }

    #[test]
    fn redundancy_removal_paper_negation_test() {
        // x >= 0, x >= -5 (implied), x <= 10, x <= 20 (implied).
        let mut p = Polyhedron::universe(sp(&["x"]));
        p.add(ge(vec![1], 0));
        p.add(ge(vec![1], 5));
        p.add(ge(vec![-1], 10));
        p.add(ge(vec![-1], 20));
        let r = p.remove_redundant().unwrap();
        assert_eq!(r.constraints().len(), 2);
        assert!(r.contains(&[0]).unwrap());
        assert!(r.contains(&[10]).unwrap());
        assert!(!r.contains(&[-1]).unwrap());
        assert!(!r.contains(&[11]).unwrap());
    }

    #[test]
    fn subtraction_produces_disjoint_cover() {
        // [0,10] \ [3,5] = [0,2] u [6,10].
        let s = sp(&["x"]);
        let mut a = Polyhedron::universe(s.clone());
        a.add(ge(vec![1], 0));
        a.add(ge(vec![-1], 10));
        let mut b = Polyhedron::universe(s);
        b.add(ge(vec![1], -3));
        b.add(ge(vec![-1], 5));
        let pieces = a.subtract(&b).unwrap();
        let mut pts: Vec<i128> = Vec::new();
        for p in &pieces {
            for q in p.enumerate_points(100).unwrap().unwrap() {
                assert!(!pts.contains(&q[0]), "pieces overlap at {}", q[0]);
                pts.push(q[0]);
            }
        }
        pts.sort();
        assert_eq!(pts, vec![0, 1, 2, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn subtraction_with_equalities() {
        // [0,6] \ {x == 3} = [0,2] u [4,6].
        let s = sp(&["x"]);
        let mut a = Polyhedron::universe(s.clone());
        a.add(ge(vec![1], 0));
        a.add(ge(vec![-1], 6));
        let mut b = Polyhedron::universe(s);
        b.add(eq(vec![1], -3));
        let pieces = a.subtract(&b).unwrap();
        let mut pts: Vec<i128> = pieces
            .iter()
            .flat_map(|p| p.enumerate_points(100).unwrap().unwrap())
            .map(|q| q[0])
            .collect();
        pts.sort();
        assert_eq!(pts, vec![0, 1, 2, 4, 5, 6]);
    }

    #[test]
    fn projection_matches_brute_force() {
        // Figure 6 of the paper: 1 <= i <= 6 (roughly); use
        //   1 <= j, j <= i, 2j <= i + 12, i <= 6 -> project onto i.
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![0, 1], -1)); // j >= 1
        p.add(ge(vec![1, -1], 0)); // i >= j
        p.add(ge(vec![1, -2], 12)); // i + 12 >= 2j
        p.add(ge(vec![-1, 0], 6)); // i <= 6
        let q = p.project_onto(&[0]).unwrap();
        // Brute force: which i in -20..20 admit a j?
        for i in -20..20i128 {
            let mut any = false;
            for j in -40..40i128 {
                if p.contains(&[i, j]).unwrap() {
                    any = true;
                }
            }
            assert_eq!(q.contains(&[i]).unwrap(), any, "i={i}");
        }
    }

    #[test]
    fn enumerate_points_box() {
        let mut p = Polyhedron::universe(sp(&["x", "y"]));
        p.add(ge(vec![1, 0], 0));
        p.add(ge(vec![-1, 0], 1));
        p.add(ge(vec![0, 1], 0));
        p.add(ge(vec![0, -1], 1));
        let pts = p.enumerate_points(100).unwrap().unwrap();
        assert_eq!(pts.len(), 4);
        // Unbounded: gives up.
        let q = Polyhedron::universe(sp(&["x"]));
        assert_eq!(q.enumerate_points(10).unwrap(), None);
    }

    #[test]
    fn extend_and_remap() {
        let mut p = Polyhedron::universe(sp(&["x"]));
        p.add(ge(vec![1], 0));
        let extra = sp(&["y"]);
        let q = p.extend_space(&extra);
        assert_eq!(q.space().len(), 2);
        assert!(q.contains(&[0, -100]).unwrap());

        let target = sp(&["a", "x"]);
        let r = p.remap(target, &[1]);
        assert!(r.contains(&[-100, 0]).unwrap());
        assert!(!r.contains(&[0, -1]).unwrap());
    }

    /// Differential property: the memoized projection path — the
    /// incremental-FM replay a legality retry hits — agrees with a
    /// from-scratch `eliminate_dims` run, cold and warm, over random
    /// banded systems; and the projection never loses a point of the
    /// original system (Fourier–Motzkin only relaxes).
    #[test]
    fn differential_incremental_fm_equals_from_scratch() {
        // xorshift64* — deterministic in-file PRNG, no dependencies.
        let mut state = 0x243f6a8885a308d3u64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545f4914f6cdd1d);
            state
        };
        for round in 0..40u32 {
            let n = 2 + (rng() % 2) as usize;
            let names: Vec<(String, crate::DimKind)> = (0..n)
                .map(|i| (format!("d{i}"), crate::DimKind::Index))
                .collect();
            let mut p = Polyhedron::universe(Space::from_dims(names));
            for d in 0..n {
                let lo = -((rng() % 4) as i128);
                let hi = (rng() % 4) as i128;
                let mut c = vec![0i128; n];
                c[d] = 1;
                p.add(ge(c.clone(), -lo));
                c[d] = -1;
                p.add(ge(c, hi));
            }
            for _ in 0..=(rng() % 3) {
                let coeffs: Vec<i128> = (0..n).map(|_| (rng() % 5) as i128 - 2).collect();
                p.add(ge(coeffs, (rng() % 9) as i128 - 4));
            }
            let keep = (rng() as usize) % n;
            let dims: Vec<usize> = (0..n).filter(|&d| d != keep).collect();
            let scratch = p.eliminate_dims_uncached(&dims).unwrap();
            let cold = p.eliminate_dims(&dims).unwrap();
            let warm = p.eliminate_dims(&dims).unwrap();
            // The three paths must agree constraint-for-constraint,
            // whatever the ambient cache knob says (another test may
            // toggle it concurrently — both settings must be identical).
            assert_eq!(
                scratch.to_string(),
                cold.to_string(),
                "round {round}: memoized projection diverged from scratch"
            );
            assert_eq!(
                cold.to_string(),
                warm.to_string(),
                "round {round}: warm replay diverged from the cold run"
            );
            let mut x = vec![-4i128; n];
            'grid: loop {
                if p.contains(&x).unwrap() {
                    assert!(
                        cold.contains(&x).unwrap(),
                        "round {round}: projection lost point {x:?}"
                    );
                }
                let mut d = 0;
                while d < n {
                    x[d] += 1;
                    if x[d] <= 4 {
                        continue 'grid;
                    }
                    x[d] = -4;
                    d += 1;
                }
                break;
            }
        }
    }

    #[test]
    fn display_renders_conjunction() {
        let mut p = Polyhedron::universe(sp(&["x"]));
        p.add(ge(vec![1], 0));
        assert_eq!(p.to_string(), "x >= 0");
        assert_eq!(Polyhedron::empty(sp(&["x"])).to_string(), "false");
        assert_eq!(Polyhedron::universe(sp(&["x"])).to_string(), "true");
    }
}
