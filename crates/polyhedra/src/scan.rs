//! Scanning a polyhedron with a loop nest (paper §5.2, after Ancourt &
//! Irigoin).
//!
//! Given a system of linear inequalities and a variable order, this module
//! derives, for each variable, the integer lower and upper bounds of the loop
//! that enumerates all solutions in lexicographic order. Bounds for the
//! `k`-th variable only reference earlier variables and un-scanned
//! dimensions (parameters), obtained by projecting the deeper variables away
//! with Fourier–Motzkin elimination.

use crate::num;
use crate::{LinExpr, PolyError, Polyhedron};

/// One bound of a scanned loop: `ceil(expr / divisor)` for lower bounds,
/// `floor(expr / divisor)` for upper bounds. `divisor >= 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    /// Affine numerator over the polyhedron's space (zero coefficients on
    /// the scanned variable and on deeper variables).
    pub expr: LinExpr,
    /// Positive divisor.
    pub divisor: i128,
}

impl Bound {
    /// Evaluates this bound as a lower bound (ceiling division).
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn eval_lower(&self, point: &[i128]) -> Result<i128, PolyError> {
        Ok(num::div_ceil(self.expr.eval(point)?, self.divisor))
    }

    /// Evaluates this bound as an upper bound (floor division).
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn eval_upper(&self, point: &[i128]) -> Result<i128, PolyError> {
        Ok(num::div_floor(self.expr.eval(point)?, self.divisor))
    }
}

/// Bounds of one scanned variable.
#[derive(Clone, Debug)]
pub struct VarBounds {
    /// The dimension being scanned.
    pub dim: usize,
    /// Lower bounds; the loop starts at the max of their ceilings.
    pub lowers: Vec<Bound>,
    /// Upper bounds; the loop ends at the min of their floors.
    pub uppers: Vec<Bound>,
    /// When the variable is pinned by an equality `dim == expr` (unit
    /// coefficient), the paper's §5.2 extension replaces the loop by an
    /// assignment; this field carries that expression.
    pub exact: Option<LinExpr>,
}

impl VarBounds {
    /// Evaluates the loop's concrete `(lower, upper)` range at a point that
    /// fixes all earlier variables and parameters (entries for this variable
    /// and deeper ones are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn range(&self, point: &[i128]) -> Result<(i128, i128), PolyError> {
        if let Some(e) = &self.exact {
            let v = e.eval(point)?;
            return Ok((v, v));
        }
        let mut lo = i128::MIN;
        for b in &self.lowers {
            lo = lo.max(b.eval_lower(point)?);
        }
        let mut hi = i128::MAX;
        for b in &self.uppers {
            hi = hi.min(b.eval_upper(point)?);
        }
        Ok((lo, hi))
    }
}

/// The scan structure of a polyhedron for a fixed variable order: one
/// [`VarBounds`] per scanned variable, outermost first.
#[derive(Clone, Debug)]
pub struct ScanNest {
    /// Per-variable bounds, in `order` (outermost first).
    pub vars: Vec<VarBounds>,
    /// Constraints not involving any scanned dimension: the guard the loop
    /// nest must be wrapped in (conditions on parameters/processor ids).
    pub guard: Polyhedron,
}

impl ScanNest {
    /// Enumerates all solutions with concrete values for the un-scanned
    /// dimensions given in `fixed` (entries at scanned positions are
    /// ignored/overwritten). Results are full points in the original space.
    ///
    /// Intended for testing and for the machine simulator's interpreter.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn enumerate(&self, fixed: &[i128], limit: usize) -> Result<Vec<Vec<i128>>, PolyError> {
        let mut out = Vec::new();
        let mut point = fixed.to_vec();
        if !self.guard_holds(&point)? {
            return Ok(out);
        }
        self.rec(0, &mut point, &mut out, limit)?;
        Ok(out)
    }

    /// Whether the guard constraints hold at `point`.
    ///
    /// # Errors
    ///
    /// Returns [`PolyError::Overflow`] on overflow.
    pub fn guard_holds(&self, point: &[i128]) -> Result<bool, PolyError> {
        self.guard.contains(point)
    }

    fn rec(
        &self,
        depth: usize,
        point: &mut Vec<i128>,
        out: &mut Vec<Vec<i128>>,
        limit: usize,
    ) -> Result<(), PolyError> {
        if depth == self.vars.len() {
            if out.len() < limit {
                out.push(point.clone());
            }
            return Ok(());
        }
        let vb = &self.vars[depth];
        let (lo, hi) = vb.range(point)?;
        for v in lo..=hi {
            point[vb.dim] = v;
            self.rec(depth + 1, point, out, limit)?;
            if out.len() >= limit {
                break;
            }
        }
        Ok(())
    }
}

/// Derives scanning bounds for `poly` in the given variable `order`
/// (outermost first). Dimensions not in `order` are treated as symbolic
/// (parameters): they may appear in bounds and end up in the guard.
///
/// Mirrors §5.2 of the paper: bounds for the innermost variable come from
/// the constraints that mention it; the variable is then projected away and
/// the process repeats outwards. Superfluous constraints are pruned with the
/// negation test after each projection so the emitted `max`/`min` lists stay
/// small.
///
/// # Errors
///
/// Returns [`PolyError::Overflow`] on overflow.
pub fn scan_bounds(poly: &Polyhedron, order: &[usize]) -> Result<ScanNest, PolyError> {
    let mut cur = poly.remove_redundant()?;
    cur = promote_tight_inequalities(&cur, order)?;
    let mut vars_rev: Vec<VarBounds> = Vec::with_capacity(order.len());
    for (k, &dim) in order.iter().enumerate().rev() {
        // Deeper dims were already eliminated; sanity-check in debug builds.
        debug_assert!(
            cur.constraints()
                .iter()
                .all(|c| order[k + 1..].iter().all(|&d| c.coeff(d) == 0)),
            "deeper dimension leaked into bounds"
        );
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut exact: Option<LinExpr> = None;
        for c in cur.constraints() {
            let a = c.coeff(dim);
            if a == 0 {
                continue;
            }
            let mut rest = c.expr().clone();
            rest.set_coeff(dim, 0);
            if c.is_eq() {
                // a*dim + rest == 0  =>  dim == -rest/a.
                if a.abs() == 1 {
                    exact = Some(rest.scale(-a.signum())?);
                } else {
                    // Both a ceiling lower bound and a floor upper bound; the
                    // loop body only runs when the division is exact.
                    let e = rest.scale(-a.signum())?;
                    lowers.push(Bound {
                        expr: e.clone(),
                        divisor: a.abs(),
                    });
                    uppers.push(Bound {
                        expr: e,
                        divisor: a.abs(),
                    });
                }
            } else if a > 0 {
                // a*dim >= -rest  =>  dim >= ceil(-rest / a).
                lowers.push(Bound {
                    expr: rest.scale(-1)?,
                    divisor: a,
                });
            } else {
                // (-a)*dim <= rest  =>  dim <= floor(rest / -a).
                uppers.push(Bound {
                    expr: rest,
                    divisor: -a,
                });
            }
        }
        vars_rev.push(VarBounds {
            dim,
            lowers,
            uppers,
            exact,
        });
        cur = cur.eliminate_dim(dim)?.remove_redundant()?;
    }
    vars_rev.reverse();
    Ok(ScanNest {
        vars: vars_rev,
        guard: cur,
    })
}

/// Promotes inequalities that hold with equality everywhere in the
/// polyhedron (the probe `poly ∧ (e − 1 >= 0)` is integer-infeasible) into
/// equality constraints. This lets degenerate dimensions — e.g. a cyclic
/// `p <= i <= p` pair, or a communication set's `p_s <= p_r − 1` that is
/// forced tight by the block bounds — surface as §5.2 assignments instead
/// of single-trip loops.
fn promote_tight_inequalities(poly: &Polyhedron, order: &[usize]) -> Result<Polyhedron, PolyError> {
    let mut out = Polyhedron::universe(poly.space().clone());
    if poly.is_obviously_empty() {
        return Ok(poly.clone());
    }
    for c in poly.constraints() {
        let promote = !c.is_eq() && order.iter().any(|&d| c.coeff(d) != 0) && {
            let mut probe = poly.clone();
            let mut strict = c.expr().clone();
            strict.set_constant(strict.constant_term() - 1);
            probe.add(crate::Constraint::ge(strict));
            probe.integer_feasibility()? == crate::Feasibility::Infeasible
        };
        if promote {
            out.add(crate::Constraint::eq(c.expr().clone()));
        } else {
            out.add(c.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, DimKind, LinExpr, Space};

    fn sp(names: &[&str]) -> Space {
        Space::from_dims(names.iter().map(|&n| (n, DimKind::Index)))
    }

    fn ge(coeffs: Vec<i128>, c: i128) -> Constraint {
        Constraint::ge(LinExpr::from_coeffs(coeffs, c))
    }

    /// The 2-D polyhedron of Figure 6 in the paper:
    /// `1 <= i <= 6`, `1 <= j`, `j <= i`, `2j <= i + 12` — scanned in
    /// `(i, j)` and `(j, i)` orders.
    fn figure6() -> Polyhedron {
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![1, 0], -1)); // i >= 1
        p.add(ge(vec![-1, 0], 6)); // i <= 6
        p.add(ge(vec![0, 1], -1)); // j >= 1
        p.add(ge(vec![1, -1], 0)); // j <= i
        p.add(ge(vec![1, -2], 12)); // 2j <= i + 12
        p
    }

    #[test]
    fn figure6_scan_both_orders_agree() {
        let p = figure6();
        let ij = scan_bounds(&p, &[0, 1]).unwrap();
        let ji = scan_bounds(&p, &[1, 0]).unwrap();
        let mut a = ij.enumerate(&[0, 0], 10_000).unwrap();
        let mut b = ji.enumerate(&[0, 0], 10_000).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Cross-check against brute force membership.
        for i in -2..10i128 {
            for j in -2..10i128 {
                let inside = p.contains(&[i, j]).unwrap();
                assert_eq!(a.binary_search(&vec![i, j]).is_ok(), inside, "({i},{j})");
            }
        }
    }

    #[test]
    fn scan_exactness_one_to_one() {
        // Every enumerated iteration is a solution and vice versa, i.e. no
        // duplicates (paper: "one-to-one correspondence").
        let p = figure6();
        let nest = scan_bounds(&p, &[0, 1]).unwrap();
        let pts = nest.enumerate(&[0, 0], 10_000).unwrap();
        let mut seen = pts.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), pts.len(), "scan produced duplicates");
    }

    #[test]
    fn scan_with_parameter_guard() {
        // 0 <= i <= N with N a parameter: guard must say N >= 0.
        let mut space = Space::new();
        space.add_dim("i", DimKind::Index);
        space.add_dim("N", DimKind::Param);
        let mut p = Polyhedron::universe(space);
        p.add(ge(vec![1, 0], 0));
        p.add(ge(vec![-1, 1], 0));
        let nest = scan_bounds(&p, &[0]).unwrap();
        assert!(nest.guard_holds(&[0, 5]).unwrap());
        assert!(!nest.guard_holds(&[0, -1]).unwrap());
        let pts = nest.enumerate(&[0, 3], 100).unwrap();
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn scan_degenerate_equality_dim() {
        // j == i - 3, 3 <= i <= 5: j should be an exact assignment.
        let mut p = Polyhedron::universe(sp(&["i", "j"]));
        p.add(ge(vec![1, 0], -3));
        p.add(ge(vec![-1, 0], 5));
        p.add(Constraint::eq(LinExpr::from_coeffs(vec![1, -1], -3)));
        let nest = scan_bounds(&p, &[0, 1]).unwrap();
        assert!(nest.vars[1].exact.is_some());
        let pts = nest.enumerate(&[0, 0], 100).unwrap();
        assert_eq!(pts, vec![vec![3, 0], vec![4, 1], vec![5, 2]]);
    }

    #[test]
    fn scan_stride_via_non_unit_equality() {
        // i == 2k for hidden k in [0,3]: i in {0,2,4,6}. Scan (k, i).
        let mut p = Polyhedron::universe(sp(&["k", "i"]));
        p.add(ge(vec![1, 0], 0));
        p.add(ge(vec![-1, 0], 3));
        p.add(Constraint::eq(LinExpr::from_coeffs(vec![2, -1], 0))); // i == 2k
        let nest = scan_bounds(&p, &[0, 1]).unwrap();
        let pts = nest.enumerate(&[0, 0], 100).unwrap();
        let is: Vec<i128> = pts.iter().map(|p| p[1]).collect();
        assert_eq!(is, vec![0, 2, 4, 6]);
    }

    #[test]
    fn empty_polyhedron_scans_to_nothing() {
        let mut p = Polyhedron::universe(sp(&["i"]));
        p.add(ge(vec![1], 0));
        p.add(ge(vec![-1], -1)); // i <= -1: empty
        let nest = scan_bounds(&p, &[0]).unwrap();
        let pts = nest.enumerate(&[0], 100).unwrap();
        assert!(pts.is_empty());
    }
}
