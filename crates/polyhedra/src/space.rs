//! Named dimension spaces.
//!
//! A [`Space`] fixes the interpretation of the coefficient vectors used by
//! [`LinExpr`](crate::LinExpr) and [`Constraint`](crate::Constraint): the
//! `k`-th coefficient multiplies the `k`-th dimension of the space.
//!
//! Dimensions carry a [`DimKind`] so that client analyses can distinguish
//! loop-index variables, symbolic constants (parameters), processor indices,
//! array subscripts, and auxiliary existential variables introduced for
//! modulo/divisibility conditions (paper §4.4.2).

use std::fmt;

/// The role a dimension plays in a polyhedron.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DimKind {
    /// A loop-index variable (iteration-space dimension).
    Index,
    /// A symbolic constant (`N`, `T`, ... — unchanged within the region).
    Param,
    /// A (virtual) processor dimension.
    Proc,
    /// An array-subscript dimension.
    Array,
    /// An auxiliary existential variable (introduced for `mod`/floor terms).
    Aux,
}

impl fmt::Display for DimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DimKind::Index => "index",
            DimKind::Param => "param",
            DimKind::Proc => "proc",
            DimKind::Array => "array",
            DimKind::Aux => "aux",
        };
        f.write_str(s)
    }
}

/// One named dimension of a [`Space`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Dim {
    name: String,
    kind: DimKind,
}

impl Dim {
    /// Creates a dimension with the given name and kind.
    pub fn new(name: impl Into<String>, kind: DimKind) -> Self {
        Dim {
            name: name.into(),
            kind,
        }
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension's kind.
    pub fn kind(&self) -> DimKind {
        self.kind
    }
}

/// An ordered list of named dimensions.
///
/// # Examples
///
/// ```
/// use dmc_polyhedra::{Space, DimKind};
///
/// let mut s = Space::new();
/// let t = s.add_dim("t", DimKind::Index);
/// let n = s.add_dim("N", DimKind::Param);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.dim(t).name(), "t");
/// assert_eq!(s.index_of("N"), Some(n));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Space {
    dims: Vec<Dim>,
}

impl Space {
    /// Creates an empty space.
    pub fn new() -> Self {
        Space { dims: Vec::new() }
    }

    /// Creates a space from a list of `(name, kind)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if two dimensions share a name.
    pub fn from_dims<I, S>(dims: I) -> Self
    where
        I: IntoIterator<Item = (S, DimKind)>,
        S: Into<String>,
    {
        let mut space = Space::new();
        for (name, kind) in dims {
            space.add_dim(name, kind);
        }
        space
    }

    /// Appends a dimension and returns its position.
    ///
    /// # Panics
    ///
    /// Panics if a dimension with the same name already exists.
    pub fn add_dim(&mut self, name: impl Into<String>, kind: DimKind) -> usize {
        let name = name.into();
        assert!(
            self.index_of(&name).is_none(),
            "duplicate dimension name {name:?}"
        );
        self.dims.push(Dim::new(name, kind));
        self.dims.len() - 1
    }

    /// Appends an auxiliary dimension with a fresh generated name and
    /// returns its position.
    pub fn add_aux(&mut self) -> usize {
        let mut k = self.dims.len();
        loop {
            let name = format!("$q{k}");
            if self.index_of(&name).is_none() {
                return self.add_dim(name, DimKind::Aux);
            }
            k += 1;
        }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The dimension at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn dim(&self, i: usize) -> &Dim {
        &self.dims[i]
    }

    /// Iterator over all dimensions in order.
    pub fn iter(&self) -> impl Iterator<Item = &Dim> {
        self.dims.iter()
    }

    /// Position of the dimension named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name() == name)
    }

    /// Positions of every dimension of kind `kind`, in order.
    pub fn dims_of_kind(&self, kind: DimKind) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.dims[i].kind() == kind)
            .collect()
    }

    /// Builds a new space that appends `other`'s dimensions after `self`'s.
    ///
    /// # Panics
    ///
    /// Panics if the spaces share a dimension name.
    pub fn product(&self, other: &Space) -> Space {
        let mut s = self.clone();
        for d in other.iter() {
            s.add_dim(d.name().to_owned(), d.kind());
        }
        s
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", d.name())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Space::from_dims([("i", DimKind::Index), ("N", DimKind::Param)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("i"), Some(0));
        assert_eq!(s.index_of("N"), Some(1));
        assert_eq!(s.index_of("j"), None);
        assert_eq!(s.dim(1).kind(), DimKind::Param);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut s = Space::new();
        s.add_dim("i", DimKind::Index);
        s.add_dim("i", DimKind::Param);
    }

    #[test]
    fn kinds_filter() {
        let s = Space::from_dims([
            ("i", DimKind::Index),
            ("p", DimKind::Proc),
            ("j", DimKind::Index),
            ("N", DimKind::Param),
        ]);
        assert_eq!(s.dims_of_kind(DimKind::Index), vec![0, 2]);
        assert_eq!(s.dims_of_kind(DimKind::Proc), vec![1]);
        assert_eq!(s.dims_of_kind(DimKind::Aux), Vec::<usize>::new());
    }

    #[test]
    fn product_appends() {
        let a = Space::from_dims([("i", DimKind::Index)]);
        let b = Space::from_dims([("p", DimKind::Proc)]);
        let c = a.product(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.index_of("p"), Some(1));
    }

    #[test]
    fn aux_names_are_fresh() {
        let mut s = Space::from_dims([("i", DimKind::Index)]);
        let a = s.add_aux();
        let b = s.add_aux();
        assert_ne!(s.dim(a).name(), s.dim(b).name());
        assert_eq!(s.dim(a).kind(), DimKind::Aux);
    }

    #[test]
    fn display_is_compact() {
        let s = Space::from_dims([("i", DimKind::Index), ("N", DimKind::Param)]);
        assert_eq!(s.to_string(), "[i, N]");
    }
}
