//! Process-wide instrumentation and tunables for the polyhedral engine.
//!
//! Every hot operation in this crate bumps an atomic counter here:
//! Fourier–Motzkin steps, integer-feasibility queries, branch-and-bound
//! nodes, memo-cache hits/misses, and the redundancy pre-filter outcomes.
//! The counters are cheap (relaxed atomics), always on, and cumulative for
//! the process; harnesses take a [`snapshot`] before and after a region and
//! diff the two ([`PolyStats::since`]).
//!
//! The module also holds the engine's runtime knobs — the feasibility
//! branch-and-bound budget, the enable switches for the memo caches and
//! the redundancy pre-filters, and the memoization size threshold
//! ([`cache_min_constraints`]) — so callers (notably `dmc_core::Options`)
//! can tune the engine without threading parameters through every call
//! site. Changing a knob bumps an internal epoch that invalidates the
//! per-thread memo caches.
//!
//! ## Process-wide knobs vs. per-thread tuning
//!
//! The knobs exist at two layers:
//!
//! * the **process-wide defaults** (the atomics behind [`set_feasibility_budget`]
//!   &c.) — ambient configuration for code that calls the engine directly;
//! * an optional **per-thread [`Tuning`] override**
//!   ([`push_thread_tuning`]) — an explicit, scoped value consulted *first*
//!   by every getter. This is what compilation sessions use: two sessions
//!   with different `Options` can run on different threads concurrently
//!   without racing on the globals, because neither ever mutates them.
//!
//! Changing either layer invalidates the relevant memo caches: global knob
//! changes bump a process-wide epoch, thread-tuning changes bump a
//! *thread-local* epoch, and [`epoch`] is the sum — so a cached answer is
//! only served while both the ambient defaults and the thread's override
//! are exactly what they were when it was computed. Pushing a `Tuning`
//! equal to the currently-effective values is free (no invalidation).
//!
//! Knob changes are meant to be scoped: [`KnobGuard::capture`] snapshots
//! every knob and restores them on drop (panic-safe), so a compile
//! that tunes the engine cannot leak its settings into the next one.
//!
//! The remaining deliberately process-wide state (not covered by
//! [`Tuning`], and safe because it is either append-only or scoped to a
//! thread already): the cumulative [`PolyStats`] counters (monotonic,
//! shared by design — harnesses diff snapshots), the per-thread memo
//! caches themselves, and the per-thread work ledger.
//!
//! When [`dmc_obs`] tracing is active, knob changes and feasibility-budget
//! exhaustions are bridged into the trace as `poly.knob` (deterministic)
//! and `poly.budget_exhausted` (diagnostic — a warm memo cache may skip
//! the query entirely, so its presence is scheduling-dependent) events.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use dmc_obs as obs;

const R: Ordering = Ordering::Relaxed;

static FM_STEPS: AtomicU64 = AtomicU64::new(0);
static FEASIBILITY_CALLS: AtomicU64 = AtomicU64::new(0);
static FEASIBILITY_UNKNOWN: AtomicU64 = AtomicU64::new(0);
static BNB_NODES: AtomicU64 = AtomicU64::new(0);
static FEAS_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static FEAS_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static PROJ_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PROJ_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static REDUND_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static REDUND_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static NEGATION_TESTS: AtomicU64 = AtomicU64::new(0);
static PREFILTER_DROPS: AtomicU64 = AtomicU64::new(0);
static PREFILTER_KEEPS: AtomicU64 = AtomicU64::new(0);
static CACHE_BYPASSES: AtomicU64 = AtomicU64::new(0);
static LEX_SPLITS: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static CONS_CLONED: AtomicU64 = AtomicU64::new(0);
static INLINE_SPILLS: AtomicU64 = AtomicU64::new(0);
static BATCH_SAVED: AtomicU64 = AtomicU64::new(0);

static CACHE_ENABLED: AtomicBool = AtomicBool::new(true);
static PREFILTERS_ENABLED: AtomicBool = AtomicBool::new(true);
static FEAS_BUDGET: AtomicU32 = AtomicU32::new(DEFAULT_FEASIBILITY_BUDGET);
static CACHE_MIN_CONSTRAINTS: AtomicU32 = AtomicU32::new(DEFAULT_CACHE_MIN_CONSTRAINTS);
static EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's explicit tuning, consulted before the globals.
    static THREAD_TUNING: Cell<Option<Tuning>> = const { Cell::new(None) };
    /// Invalidation epoch for tuning changes local to this thread.
    static THREAD_EPOCH: Cell<u64> = const { Cell::new(0) };
    /// This thread's cumulative heap-allocation count (mirror of the
    /// global [`ALLOCS`] counter), read by the work ledger to attribute
    /// allocations to the operation open on this thread.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// The default branch-and-bound budget of
/// [`Polyhedron::integer_feasibility`](crate::Polyhedron::integer_feasibility).
pub const DEFAULT_FEASIBILITY_BUDGET: u32 = 4_000;

/// Default minimum constraint count for a system to be worth memoizing.
/// Tiny systems are solved faster than their canonical cache key can be
/// built and hashed, so the caches skip them (counted as
/// [`PolyStats::cache_bypasses`]).
pub const DEFAULT_CACHE_MIN_CONSTRAINTS: u32 = 8;

/// A snapshot of the engine's cumulative counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolyStats {
    /// Fourier–Motzkin single-dimension elimination steps.
    pub fm_steps: u64,
    /// Top-level integer-feasibility queries.
    pub feasibility_calls: u64,
    /// Queries that exhausted their budget and returned `Unknown`.
    pub feasibility_unknown: u64,
    /// Branch-and-bound nodes visited inside feasibility queries.
    pub bnb_nodes: u64,
    /// Feasibility memo-cache hits.
    pub feas_cache_hits: u64,
    /// Feasibility memo-cache misses.
    pub feas_cache_misses: u64,
    /// Projection (`eliminate_dims`) memo-cache hits.
    pub proj_cache_hits: u64,
    /// Projection memo-cache misses.
    pub proj_cache_misses: u64,
    /// Redundancy-removal memo-cache hits.
    pub redund_cache_hits: u64,
    /// Redundancy-removal memo-cache misses.
    pub redund_cache_misses: u64,
    /// Exact negation tests run by `remove_redundant`.
    pub negation_tests: u64,
    /// Constraints dropped by the cheap pre-filters (no exact test needed).
    pub prefilter_drops: u64,
    /// Constraints kept by a verified witness point (no exact test needed).
    pub prefilter_keeps: u64,
    /// Memo-cache consults skipped because the system was smaller than
    /// the [`cache_min_constraints`] threshold.
    pub cache_bypasses: u64,
    /// Parametric-lexmax case splits explored (one per non-empty piece of
    /// [`lexopt`](crate::lexopt)'s which-bound-is-tight disjunction).
    pub lex_splits: u64,
    /// Heap allocations performed by the constraint storage layer: every
    /// coefficient row that could not live in a [`LinExpr`](crate::LinExpr)
    /// inline buffer (creation past the inline width, or cloning a
    /// heap-backed row).
    pub allocs: u64,
    /// [`Constraint`](crate::Constraint) clones (inline or spilled).
    pub cons_cloned: u64,
    /// Inline-to-heap transitions: an operation on an inline coefficient
    /// row produced one wider than the inline buffer.
    pub inline_spills: u64,
    /// Feasibility queries answered by subset dominance inside
    /// [`batch_feasibility`](crate::batch_feasibility) instead of by the
    /// solver.
    pub batch_saved: u64,
}

impl PolyStats {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &PolyStats) -> PolyStats {
        PolyStats {
            fm_steps: self.fm_steps.saturating_sub(earlier.fm_steps),
            feasibility_calls: self
                .feasibility_calls
                .saturating_sub(earlier.feasibility_calls),
            feasibility_unknown: self
                .feasibility_unknown
                .saturating_sub(earlier.feasibility_unknown),
            bnb_nodes: self.bnb_nodes.saturating_sub(earlier.bnb_nodes),
            feas_cache_hits: self.feas_cache_hits.saturating_sub(earlier.feas_cache_hits),
            feas_cache_misses: self
                .feas_cache_misses
                .saturating_sub(earlier.feas_cache_misses),
            proj_cache_hits: self.proj_cache_hits.saturating_sub(earlier.proj_cache_hits),
            proj_cache_misses: self
                .proj_cache_misses
                .saturating_sub(earlier.proj_cache_misses),
            redund_cache_hits: self
                .redund_cache_hits
                .saturating_sub(earlier.redund_cache_hits),
            redund_cache_misses: self
                .redund_cache_misses
                .saturating_sub(earlier.redund_cache_misses),
            negation_tests: self.negation_tests.saturating_sub(earlier.negation_tests),
            prefilter_drops: self.prefilter_drops.saturating_sub(earlier.prefilter_drops),
            prefilter_keeps: self.prefilter_keeps.saturating_sub(earlier.prefilter_keeps),
            cache_bypasses: self.cache_bypasses.saturating_sub(earlier.cache_bypasses),
            lex_splits: self.lex_splits.saturating_sub(earlier.lex_splits),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            cons_cloned: self.cons_cloned.saturating_sub(earlier.cons_cloned),
            inline_spills: self.inline_spills.saturating_sub(earlier.inline_spills),
            batch_saved: self.batch_saved.saturating_sub(earlier.batch_saved),
        }
    }
}

/// Reads every counter.
pub fn snapshot() -> PolyStats {
    PolyStats {
        fm_steps: FM_STEPS.load(R),
        feasibility_calls: FEASIBILITY_CALLS.load(R),
        feasibility_unknown: FEASIBILITY_UNKNOWN.load(R),
        bnb_nodes: BNB_NODES.load(R),
        feas_cache_hits: FEAS_CACHE_HITS.load(R),
        feas_cache_misses: FEAS_CACHE_MISSES.load(R),
        proj_cache_hits: PROJ_CACHE_HITS.load(R),
        proj_cache_misses: PROJ_CACHE_MISSES.load(R),
        redund_cache_hits: REDUND_CACHE_HITS.load(R),
        redund_cache_misses: REDUND_CACHE_MISSES.load(R),
        negation_tests: NEGATION_TESTS.load(R),
        prefilter_drops: PREFILTER_DROPS.load(R),
        prefilter_keeps: PREFILTER_KEEPS.load(R),
        cache_bypasses: CACHE_BYPASSES.load(R),
        lex_splits: LEX_SPLITS.load(R),
        allocs: ALLOCS.load(R),
        cons_cloned: CONS_CLONED.load(R),
        inline_spills: INLINE_SPILLS.load(R),
        batch_saved: BATCH_SAVED.load(R),
    }
}

/// Resets every counter to zero (the knobs are untouched).
pub fn reset() {
    for c in [
        &FM_STEPS,
        &FEASIBILITY_CALLS,
        &FEASIBILITY_UNKNOWN,
        &BNB_NODES,
        &FEAS_CACHE_HITS,
        &FEAS_CACHE_MISSES,
        &PROJ_CACHE_HITS,
        &PROJ_CACHE_MISSES,
        &REDUND_CACHE_HITS,
        &REDUND_CACHE_MISSES,
        &NEGATION_TESTS,
        &PREFILTER_DROPS,
        &PREFILTER_KEEPS,
        &CACHE_BYPASSES,
        &LEX_SPLITS,
        &ALLOCS,
        &CONS_CLONED,
        &INLINE_SPILLS,
        &BATCH_SAVED,
    ] {
        c.store(0, R);
    }
}

pub(crate) fn count_fm_step() {
    FM_STEPS.fetch_add(1, R);
}
pub(crate) fn count_feasibility_call() {
    FEASIBILITY_CALLS.fetch_add(1, R);
}
pub(crate) fn count_feasibility_unknown() {
    FEASIBILITY_UNKNOWN.fetch_add(1, R);
    if obs::enabled() {
        obs::event_nondet(
            "poly.budget_exhausted",
            vec![obs::field("budget", feasibility_budget())],
        );
    }
}
pub(crate) fn count_bnb_node() {
    BNB_NODES.fetch_add(1, R);
}
pub(crate) fn count_feas_cache(hit: bool) {
    if hit {
        &FEAS_CACHE_HITS
    } else {
        &FEAS_CACHE_MISSES
    }
    .fetch_add(1, R);
}
pub(crate) fn count_proj_cache(hit: bool) {
    if hit {
        &PROJ_CACHE_HITS
    } else {
        &PROJ_CACHE_MISSES
    }
    .fetch_add(1, R);
}
pub(crate) fn count_redund_cache(hit: bool) {
    if hit {
        &REDUND_CACHE_HITS
    } else {
        &REDUND_CACHE_MISSES
    }
    .fetch_add(1, R);
}
pub(crate) fn count_negation_test() {
    NEGATION_TESTS.fetch_add(1, R);
}
pub(crate) fn count_prefilter_drop() {
    PREFILTER_DROPS.fetch_add(1, R);
}
pub(crate) fn count_prefilter_keep() {
    PREFILTER_KEEPS.fetch_add(1, R);
}
pub(crate) fn count_lex_split() {
    LEX_SPLITS.fetch_add(1, R);
}
pub(crate) fn count_alloc() {
    ALLOCS.fetch_add(1, R);
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}
pub(crate) fn count_cons_cloned() {
    CONS_CLONED.fetch_add(1, R);
}
pub(crate) fn count_inline_spill() {
    INLINE_SPILLS.fetch_add(1, R);
}
pub(crate) fn count_batch_saved() {
    BATCH_SAVED.fetch_add(1, R);
}

/// This thread's cumulative allocation count. The work ledger reads it on
/// operation open and close; the delta is the operation's (inclusive)
/// allocation footprint.
pub(crate) fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// A complete, explicit set of the engine tunables.
///
/// A `Tuning` is the value-typed form of the four process-wide knobs. It
/// exists so callers that must not interfere with each other — concurrent
/// compilation sessions with different `Options` — can carry their tuning
/// as data and install it per thread ([`push_thread_tuning`]) instead of
/// mutating the shared atomics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tuning {
    /// Branch-and-bound budget for integer-feasibility queries.
    pub feasibility_budget: u32,
    /// Whether the memo caches are consulted.
    pub cache_enabled: bool,
    /// Whether `remove_redundant` runs the cheap pre-filters.
    pub prefilters_enabled: bool,
    /// Minimum constraint count for a system to be worth memoizing.
    pub cache_min_constraints: u32,
}

impl Default for Tuning {
    /// The engine's built-in defaults (not the current process-wide
    /// values; see [`Tuning::effective`] for those).
    fn default() -> Self {
        Tuning {
            feasibility_budget: DEFAULT_FEASIBILITY_BUDGET,
            cache_enabled: true,
            prefilters_enabled: true,
            cache_min_constraints: DEFAULT_CACHE_MIN_CONSTRAINTS,
        }
    }
}

impl Tuning {
    /// The tuning currently in effect on this thread: the thread's
    /// override if one is installed, the process-wide knobs otherwise.
    pub fn effective() -> Self {
        Tuning {
            feasibility_budget: feasibility_budget(),
            cache_enabled: cache_enabled(),
            prefilters_enabled: prefilters_enabled(),
            cache_min_constraints: cache_min_constraints(),
        }
    }
}

/// Installs `tuning` as this thread's engine tuning until the returned
/// guard drops (which restores the previous override, or none).
///
/// The getters ([`feasibility_budget`] &c.) consult the thread override
/// before the process-wide knobs, so engine work on this thread runs
/// under `tuning` without mutating any global — concurrent threads with
/// different tunings cannot observe each other. If the effective values
/// actually change, the thread-local cache epoch is bumped so memoized
/// answers computed under the old tuning are not served under the new
/// one; pushing the already-effective values is free.
#[must_use = "the tuning is uninstalled when the guard drops"]
pub fn push_thread_tuning(tuning: Tuning) -> ThreadTuningGuard {
    let before = Tuning::effective();
    let prev = THREAD_TUNING.with(|c| c.replace(Some(tuning)));
    if before != tuning {
        THREAD_EPOCH.with(|c| c.set(c.get() + 1));
    }
    ThreadTuningGuard { prev }
}

/// RAII restore for [`push_thread_tuning`] (panic-safe, nestable).
#[derive(Debug)]
pub struct ThreadTuningGuard {
    prev: Option<Tuning>,
}

impl Drop for ThreadTuningGuard {
    fn drop(&mut self) {
        let before = Tuning::effective();
        THREAD_TUNING.with(|c| c.set(self.prev));
        if Tuning::effective() != before {
            THREAD_EPOCH.with(|c| c.set(c.get() + 1));
        }
    }
}

/// Whether the memo caches are consulted. Default `true`.
pub fn cache_enabled() -> bool {
    match THREAD_TUNING.with(Cell::get) {
        Some(t) => t.cache_enabled,
        None => CACHE_ENABLED.load(R),
    }
}

/// Whether a system of `n_constraints` is worth memoizing under the
/// current knobs. Counts a bypass when the caches are on but the system
/// is below the [`cache_min_constraints`] threshold.
pub(crate) fn cache_admits(n_constraints: usize) -> bool {
    if !cache_enabled() {
        return false;
    }
    if n_constraints < cache_min_constraints() as usize {
        CACHE_BYPASSES.fetch_add(1, R);
        return false;
    }
    true
}

/// Enables or disables the memo caches (process-wide). Disabling also
/// invalidates the per-thread caches.
pub fn set_cache_enabled(on: bool) {
    if CACHE_ENABLED.swap(on, R) != on {
        let e = EPOCH.fetch_add(1, R) + 1;
        knob_event("cache_enabled", u64::from(on), e);
    }
}

/// Whether `remove_redundant` runs the cheap pre-filters. Default `true`.
pub fn prefilters_enabled() -> bool {
    match THREAD_TUNING.with(Cell::get) {
        Some(t) => t.prefilters_enabled,
        None => PREFILTERS_ENABLED.load(R),
    }
}

/// Enables or disables the redundancy pre-filters (process-wide). Changing
/// the setting invalidates the per-thread memo caches (a cached
/// `remove_redundant` answer records the setting it was computed under).
pub fn set_prefilters_enabled(on: bool) {
    if PREFILTERS_ENABLED.swap(on, R) != on {
        let e = EPOCH.fetch_add(1, R) + 1;
        knob_event("prefilters_enabled", u64::from(on), e);
    }
}

/// The minimum constraint count for a system to be worth memoizing.
/// Default [`DEFAULT_CACHE_MIN_CONSTRAINTS`]; 0 memoizes everything.
pub fn cache_min_constraints() -> u32 {
    match THREAD_TUNING.with(Cell::get) {
        Some(t) => t.cache_min_constraints,
        None => CACHE_MIN_CONSTRAINTS.load(R),
    }
}

/// Sets the memoization size threshold. Systems with fewer constraints
/// skip the memo caches entirely (key construction + hashing costs more
/// than re-solving them). Changing the threshold invalidates the
/// per-thread memo caches.
pub fn set_cache_min_constraints(min: u32) {
    if CACHE_MIN_CONSTRAINTS.swap(min, R) != min {
        let e = EPOCH.fetch_add(1, R) + 1;
        knob_event("cache_min_constraints", u64::from(min), e);
    }
}

/// The current branch-and-bound budget for integer-feasibility queries.
pub fn feasibility_budget() -> u32 {
    match THREAD_TUNING.with(Cell::get) {
        Some(t) => t.feasibility_budget,
        None => FEAS_BUDGET.load(R),
    }
}

/// Sets the branch-and-bound budget. A budget of 0 makes every query
/// return `Unknown` immediately (conservatively treated as feasible).
/// Changing the budget invalidates the per-thread memo caches.
pub fn set_feasibility_budget(budget: u32) {
    if FEAS_BUDGET.swap(budget, R) != budget {
        let e = EPOCH.fetch_add(1, R) + 1;
        knob_event("feasibility_budget", u64::from(budget), e);
    }
}

/// Bridges a knob change (and the cache-epoch bump it caused) into the
/// trace. Knob changes happen at deterministic points — the scoped
/// apply/restore of a pipeline entry — so the event is deterministic.
fn knob_event(knob: &'static str, value: u64, epoch: u64) {
    if obs::enabled() {
        obs::event(
            "poly.knob",
            vec![
                obs::field("knob", knob),
                obs::field("value", value),
                obs::field("epoch", epoch),
            ],
        );
    }
}

/// The cache-invalidation epoch as seen by this thread: the process-wide
/// epoch (bumped on global knob changes and ledger starts) plus the
/// thread-local epoch (bumped on effective [`Tuning`] changes). Both
/// components only grow, so the sum is monotonic per thread.
pub(crate) fn epoch() -> u64 {
    EPOCH.load(R).wrapping_add(THREAD_EPOCH.with(Cell::get))
}

/// Invalidates the per-thread memo caches without changing any knob.
/// Used when the work ledger turns on: entries cached while the ledger was
/// off carry no charged cost, so they must not be served under it (see
/// [`ledger`](crate::ledger)).
pub(crate) fn bump_epoch() {
    EPOCH.fetch_add(1, R);
}

/// RAII snapshot of the engine knobs (`feasibility_budget`,
/// `cache_enabled`, `prefilters_enabled`, `cache_min_constraints`):
/// restores all four on drop, including during unwinding — a panicking or
/// early-returning compile cannot leak its tuning into the next
/// in-process compile.
#[derive(Debug)]
pub struct KnobGuard {
    budget: u32,
    cache: bool,
    prefilters: bool,
    min_constraints: u32,
}

impl KnobGuard {
    /// Snapshots the current knob values.
    pub fn capture() -> Self {
        KnobGuard {
            budget: feasibility_budget(),
            cache: cache_enabled(),
            prefilters: prefilters_enabled(),
            min_constraints: cache_min_constraints(),
        }
    }
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_feasibility_budget(self.budget);
        set_cache_enabled(self.cache);
        set_prefilters_enabled(self.prefilters);
        set_cache_min_constraints(self.min_constraints);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_knobs() {
        let before = snapshot();
        count_fm_step();
        count_fm_step();
        count_bnb_node();
        let after = snapshot();
        let d = after.since(&before);
        assert!(d.fm_steps >= 2);
        assert!(d.bnb_nodes >= 1);

        let e0 = epoch();
        set_feasibility_budget(123);
        assert_eq!(feasibility_budget(), 123);
        assert!(epoch() > e0, "budget change must bump the epoch");
        set_feasibility_budget(DEFAULT_FEASIBILITY_BUDGET);

        set_cache_enabled(false);
        assert!(!cache_enabled());
        set_cache_enabled(true);
        set_prefilters_enabled(true);
        assert!(prefilters_enabled());
    }

    #[test]
    fn size_gate_counts_bypasses_and_scopes() {
        let guard = KnobGuard::capture();
        set_cache_enabled(true);
        set_cache_min_constraints(5);
        let before = snapshot();
        assert!(!cache_admits(4), "below the threshold: bypass");
        assert!(cache_admits(5), "at the threshold: memoize");
        let d = snapshot().since(&before);
        assert_eq!(d.cache_bypasses, 1);

        // Disabled caches bypass silently (no bypass counted: nothing to
        // bypass, the cache is off altogether).
        set_cache_enabled(false);
        let before = snapshot();
        assert!(!cache_admits(100));
        assert_eq!(snapshot().since(&before).cache_bypasses, 0);

        let e0 = epoch();
        drop(guard);
        assert!(epoch() > e0, "restoring knobs must bump the epoch");
        assert!(cache_enabled());
    }

    /// The thread-local epoch component alone — immune to concurrent
    /// tests bumping the process-wide epoch.
    fn thread_epoch() -> u64 {
        THREAD_EPOCH.with(Cell::get)
    }

    #[test]
    fn thread_tuning_overrides_getters_and_restores() {
        // A dedicated thread so no other test's thread state interferes.
        std::thread::spawn(|| {
            let t = Tuning {
                feasibility_budget: 77,
                cache_enabled: false,
                prefilters_enabled: false,
                cache_min_constraints: 3,
            };
            let e0 = thread_epoch();
            let g = push_thread_tuning(t);
            assert_eq!(feasibility_budget(), 77);
            assert!(!cache_enabled());
            assert!(!prefilters_enabled());
            assert_eq!(cache_min_constraints(), 3);
            assert_eq!(Tuning::effective(), t);
            assert!(thread_epoch() > e0, "an effective change must invalidate");

            // Pushing the already-effective values is free (no
            // invalidation), nested, and unwinds in order.
            let e1 = thread_epoch();
            let same = push_thread_tuning(t);
            assert_eq!(thread_epoch(), e1);
            drop(same);
            assert_eq!(thread_epoch(), e1);

            let inner = push_thread_tuning(Tuning {
                feasibility_budget: 5,
                ..t
            });
            assert_eq!(feasibility_budget(), 5);
            assert!(thread_epoch() > e1);
            drop(inner);
            assert_eq!(feasibility_budget(), 77, "inner pop restores outer tuning");

            let e2 = thread_epoch();
            drop(g);
            assert!(thread_epoch() > e2, "popping the override must invalidate");
            assert!(THREAD_TUNING.with(Cell::get).is_none());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn thread_tuning_is_thread_local() {
        std::thread::spawn(|| {
            let _g = push_thread_tuning(Tuning {
                feasibility_budget: 99,
                ..Tuning::default()
            });
            assert_eq!(feasibility_budget(), 99);
            // A freshly spawned thread does not inherit the override: it
            // sees the process-wide knobs (whatever they currently are).
            std::thread::spawn(|| {
                assert!(THREAD_TUNING.with(Cell::get).is_none());
            })
            .join()
            .unwrap();
        })
        .join()
        .unwrap();
    }
}
