//! Property-based tests for the polyhedral engine: every operation is
//! cross-checked against brute-force enumeration on small random systems.
//!
//! The generator is a tiny deterministic xorshift PRNG (std-only; the build
//! environment has no registry access for `proptest`), so every run checks
//! the exact same case set — failures reproduce by case number.

use dmc_polyhedra::{
    lexopt, scan_bounds, Constraint, DimKind, Direction, Feasibility, LinExpr, Polyhedron, Space,
};

/// xorshift64* — deterministic, seedable, good enough for test-case
/// generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u64;
        lo + (self.next() % span) as i128
    }

    fn chance(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

/// A random constraint over `n` dims with small coefficients.
fn gen_constraint(rng: &mut Rng, n: usize) -> Constraint {
    let coeffs: Vec<i128> = (0..n).map(|_| rng.range(-3, 3)).collect();
    let c = rng.range(-6, 6);
    let e = LinExpr::from_coeffs(coeffs, c);
    if rng.chance() {
        Constraint::eq(e)
    } else {
        Constraint::ge(e)
    }
}

/// A random polyhedron over `n` dims, intersected with the box `[-b, b]^n`
/// so everything is enumerable.
fn gen_polyhedron(rng: &mut Rng, n: usize, extra: usize, b: i128) -> Polyhedron {
    let space = Space::from_dims((0..n).map(|k| (format!("x{k}"), DimKind::Index)));
    let mut p = Polyhedron::universe(space);
    for k in 0..n {
        let mut lo = LinExpr::var(n, k);
        lo.set_constant(b);
        p.add(Constraint::ge(lo)); // x_k >= -b
        let mut hi = LinExpr::var(n, k).scaled(-1);
        hi.set_constant(b);
        p.add(Constraint::ge(hi)); // x_k <= b
    }
    let m = (rng.next() % (extra as u64 + 1)) as usize;
    for _ in 0..m {
        p.add(gen_constraint(rng, n));
    }
    p
}

fn points_of(p: &Polyhedron, b: i128) -> Vec<Vec<i128>> {
    let n = p.space().len();
    let mut out = Vec::new();
    let mut pt = vec![-b; n];
    loop {
        if p.contains(&pt).unwrap() {
            out.push(pt.clone());
        }
        let mut d = n;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            pt[d] += 1;
            if pt[d] <= b {
                break;
            }
            pt[d] = -b;
        }
    }
}

/// Integer feasibility never says Infeasible when a point exists, and
/// never says Feasible when none does (within the box).
#[test]
fn feasibility_matches_enumeration() {
    let mut rng = Rng::new(0xFEA5);
    for case in 0..48 {
        let p = gen_polyhedron(&mut rng, 3, 4, 4);
        let pts = points_of(&p, 4);
        match p.integer_feasibility().unwrap() {
            Feasibility::Infeasible => {
                assert!(
                    pts.is_empty(),
                    "case {case}: claimed infeasible with {} points",
                    pts.len()
                )
            }
            Feasibility::Feasible => {
                assert!(
                    !pts.is_empty(),
                    "case {case}: claimed feasible with no points"
                )
            }
            Feasibility::Unknown => {}
        }
    }
}

/// Fourier–Motzkin projection is an over-approximation that is exact on
/// the side it claims: every point with an integer preimage lies in the
/// projection.
#[test]
fn projection_covers_shadow() {
    let mut rng = Rng::new(0x511AD0);
    for case in 0..48 {
        let p = gen_polyhedron(&mut rng, 3, 3, 4);
        let proj = p.eliminate_dims(&[2]).unwrap();
        for pt in points_of(&p, 4) {
            assert!(
                proj.contains(&pt).unwrap(),
                "case {case}: projection lost {pt:?}"
            );
        }
    }
}

/// The under-approximating projection is sound: every point of the result
/// has an integer preimage.
#[test]
fn under_projection_is_sound() {
    let mut rng = Rng::new(0x50112D);
    for case in 0..48 {
        let p = gen_polyhedron(&mut rng, 3, 3, 3);
        let under = p.eliminate_dims_under(&[2]).unwrap();
        let all = points_of(&p, 3);
        for x0 in -3i128..=3 {
            for x1 in -3i128..=3 {
                // `under` ignores x2; test membership with any value.
                if under.contains(&[x0, x1, 0]).unwrap() {
                    let witnessed = all.iter().any(|q| q[0] == x0 && q[1] == x1);
                    assert!(
                        witnessed,
                        "case {case}: under-projection invented ({x0},{x1})"
                    );
                }
            }
        }
    }
}

/// Subtraction partitions: pieces are disjoint, live inside A, avoid B,
/// and together with A∩B cover A.
#[test]
fn subtraction_partitions() {
    let mut rng = Rng::new(0x5B7AC7);
    for case in 0..48 {
        let a = gen_polyhedron(&mut rng, 2, 3, 4);
        let bq = gen_polyhedron(&mut rng, 2, 3, 4);
        let pieces = a.subtract(&bq).unwrap();
        for pt in points_of(&a, 4) {
            let in_b = bq.contains(&pt).unwrap();
            let covering: usize = pieces.iter().filter(|q| q.contains(&pt).unwrap()).count();
            if in_b {
                assert_eq!(covering, 0, "case {case}: piece overlaps B at {pt:?}");
            } else {
                assert_eq!(
                    covering, 1,
                    "case {case}: point {pt:?} covered {covering} times"
                );
            }
        }
        // Pieces never leak outside A.
        for q in &pieces {
            for pt in points_of(q, 4) {
                assert!(
                    a.contains(&pt).unwrap(),
                    "case {case}: piece escapes A at {pt:?}"
                );
            }
        }
    }
}

/// Scanning enumerates exactly the member points, each once.
#[test]
fn scan_is_exact() {
    let mut rng = Rng::new(0x5CA4);
    for case in 0..48 {
        let p = gen_polyhedron(&mut rng, 2, 3, 4);
        let nest = scan_bounds(&p, &[0, 1]).unwrap();
        let mut scanned = nest.enumerate(&[0, 0], 100_000).unwrap();
        scanned.sort();
        let n = scanned.len();
        scanned.dedup();
        assert_eq!(scanned.len(), n, "case {case}: duplicate scan points");
        let mut expected = points_of(&p, 4);
        expected.sort();
        assert_eq!(scanned, expected, "case {case}");
    }
}

/// Parametric lexmax agrees with brute force at every context.
#[test]
fn lexopt_matches_brute_force() {
    let mut rng = Rng::new(0x1E304);
    for case in 0..48 {
        let p = gen_polyhedron(&mut rng, 2, 3, 4);
        let solved = match lexopt(&p, &[1], Direction::Max) {
            Ok(s) => s,
            // Unbounded cannot happen (box), but budget exhaustion may.
            Err(_) => continue,
        };
        for x0 in -4i128..=4 {
            let brute = (-4i128..=4)
                .rev()
                .find(|&x1| p.contains(&[x0, x1]).unwrap());
            // Find the piece covering x0 (if any) and evaluate, solving
            // aux dims by search.
            let mut got = None;
            let mut hits = 0;
            for piece in &solved.pieces {
                let n = piece.context.space().len();
                let mut fixed = piece
                    .context
                    .substitute_dim(0, &LinExpr::constant(n, x0))
                    .unwrap();
                // x1 is unconstrained in the context; aux dims (if any) must
                // be found by search.
                let aux: Vec<usize> = (2..n).collect();
                if aux.is_empty() {
                    if fixed.contains(&vec![x0; n]).unwrap() {
                        hits += 1;
                        let mut pt = vec![0i128; n];
                        pt[0] = x0;
                        got = Some(piece.solution[0].eval(&pt).unwrap());
                    }
                } else {
                    fixed = fixed.substitute_dim(1, &LinExpr::constant(n, 0)).unwrap();
                    let proj = fixed.project_onto(&aux).unwrap();
                    if proj.constraints().is_empty() && !proj.is_obviously_empty() {
                        // Aux dims unconstrained in this piece: any value
                        // witnesses membership — but only if the non-aux
                        // part of the context holds.
                        let mut probe = vec![0i128; n];
                        probe[0] = x0;
                        if fixed.contains(&probe).unwrap() {
                            hits += 1;
                            got = Some(piece.solution[0].eval(&probe).unwrap());
                        }
                    } else if let Some(sols) = proj.enumerate_points(4).unwrap() {
                        if let Some(s) = sols.first() {
                            hits += 1;
                            let mut pt = vec![0i128; n];
                            pt[0] = x0;
                            for (k, &d) in aux.iter().enumerate() {
                                pt[d] = s[k];
                            }
                            got = Some(piece.solution[0].eval(&pt).unwrap());
                        }
                    }
                }
            }
            assert!(hits <= 1, "case {case}: pieces overlap at x0={x0}");
            assert_eq!(got, brute, "case {case}: lexmax mismatch at x0={x0}");
        }
    }
}

/// Redundancy removal never changes the set.
#[test]
fn redundancy_removal_preserves_set() {
    let mut rng = Rng::new(0x4ED);
    for case in 0..48 {
        let p = gen_polyhedron(&mut rng, 2, 4, 4);
        let r = p.remove_redundant().unwrap();
        for x0 in -5i128..=5 {
            for x1 in -5i128..=5 {
                assert_eq!(
                    p.contains(&[x0, x1]).unwrap(),
                    r.contains(&[x0, x1]).unwrap(),
                    "case {case}: set changed at ({x0}, {x1})"
                );
            }
        }
        assert!(r.constraints().len() <= p.constraints().len());
    }
}

/// The memoized fast paths answer exactly like the uncached engine, and
/// the pre-filtered redundancy removal matches the pure negation test.
#[test]
fn fast_paths_match_uncached_engine() {
    use dmc_polyhedra::stats;
    let mut rng = Rng::new(0xCAC4E);
    for case in 0..64 {
        let p = gen_polyhedron(&mut rng, 3, 4, 4);

        stats::set_cache_enabled(true);
        stats::set_prefilters_enabled(true);
        let feas_on = p.integer_feasibility().unwrap();
        let feas_on2 = p.integer_feasibility().unwrap(); // cached answer
        let proj_on = p.eliminate_dims(&[1, 2]).unwrap();
        let proj_on2 = p.eliminate_dims(&[1, 2]).unwrap();
        let red_on = p.remove_redundant().unwrap();
        let red_on2 = p.remove_redundant().unwrap();

        stats::set_cache_enabled(false);
        stats::set_prefilters_enabled(false);
        let feas_off = p.integer_feasibility().unwrap();
        let proj_off = p.eliminate_dims(&[1, 2]).unwrap();
        let red_off = p.remove_redundant().unwrap();

        stats::set_cache_enabled(true);
        stats::set_prefilters_enabled(true);

        assert_eq!(feas_on, feas_off, "case {case}: feasibility differs");
        assert_eq!(feas_on, feas_on2, "case {case}: feasibility cache unstable");
        assert_eq!(proj_on, proj_off, "case {case}: projection differs");
        assert_eq!(proj_on, proj_on2, "case {case}: projection cache unstable");
        assert_eq!(red_on2, red_on, "case {case}: redundancy cache unstable");
        // The pre-filters may only skip exact tests, never change the
        // surviving constraint list.
        assert_eq!(red_on, red_off, "case {case}: redundancy removal differs");
    }
}

/// The canonical key identifies equal systems regardless of insertion
/// order, and separates different ones.
#[test]
fn canonical_key_is_order_insensitive() {
    let space = Space::from_dims([("x", DimKind::Index), ("y", DimKind::Index)]);
    let c1 = Constraint::ge(LinExpr::from_coeffs(vec![1, 0], 0));
    let c2 = Constraint::ge(LinExpr::from_coeffs(vec![0, -1], 7));
    let mut a = Polyhedron::universe(space.clone());
    a.add(c1.clone());
    a.add(c2.clone());
    let mut b = Polyhedron::universe(space.clone());
    b.add(c2);
    b.add(c1);
    assert_eq!(a.canonical_key(), b.canonical_key());

    let mut c = Polyhedron::universe(space);
    c.add(Constraint::ge(LinExpr::from_coeffs(vec![1, 0], 1)));
    assert_ne!(a.canonical_key(), c.canonical_key());
}
