//! Property-based tests for the polyhedral engine: every operation is
//! cross-checked against brute-force enumeration on small random systems.

use proptest::prelude::*;

use dmc_polyhedra::{
    lexopt, scan_bounds, Constraint, DimKind, Direction, Feasibility, LinExpr, Polyhedron, Space,
};

/// A random constraint over `n` dims with small coefficients, biased
/// towards feasible boxes by adding box bounds separately.
fn arb_constraint(n: usize) -> impl Strategy<Value = Constraint> {
    (
        proptest::collection::vec(-3i128..=3, n),
        -6i128..=6,
        proptest::bool::ANY,
    )
        .prop_map(|(coeffs, c, eq)| {
            let e = LinExpr::from_coeffs(coeffs, c);
            if eq {
                Constraint::eq(e)
            } else {
                Constraint::ge(e)
            }
        })
}

/// A random polyhedron over `n` dims, intersected with the box
/// `[-B, B]^n` so everything is enumerable.
fn arb_polyhedron(n: usize, extra: usize, b: i128) -> impl Strategy<Value = Polyhedron> {
    proptest::collection::vec(arb_constraint(n), 0..=extra).prop_map(move |cons| {
        let space = Space::from_dims((0..n).map(|k| (format!("x{k}"), DimKind::Index)));
        let mut p = Polyhedron::universe(space);
        for k in 0..n {
            let mut lo = LinExpr::var(n, k);
            lo.set_constant(b);
            p.add(Constraint::ge(lo)); // x_k >= -b
            let mut hi = LinExpr::var(n, k).scaled(-1);
            hi.set_constant(b);
            p.add(Constraint::ge(hi)); // x_k <= b
        }
        for c in cons {
            p.add(c);
        }
        p
    })
}

fn points_of(p: &Polyhedron, b: i128) -> Vec<Vec<i128>> {
    let n = p.space().len();
    let mut out = Vec::new();
    let mut pt = vec![-b; n];
    loop {
        if p.contains(&pt).unwrap() {
            out.push(pt.clone());
        }
        let mut d = n;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            pt[d] += 1;
            if pt[d] <= b {
                break;
            }
            pt[d] = -b;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Integer feasibility never says Infeasible when a point exists, and
    /// never says Feasible when none does (within the box).
    #[test]
    fn feasibility_matches_enumeration(p in arb_polyhedron(3, 4, 4)) {
        let pts = points_of(&p, 4);
        match p.integer_feasibility().unwrap() {
            Feasibility::Infeasible => prop_assert!(pts.is_empty(), "claimed infeasible with {} points", pts.len()),
            Feasibility::Feasible => prop_assert!(!pts.is_empty(), "claimed feasible with no points"),
            Feasibility::Unknown => {}
        }
    }

    /// Fourier–Motzkin projection is an over-approximation that is exact
    /// on the side it claims: every point with an integer preimage lies in
    /// the projection.
    #[test]
    fn projection_covers_shadow(p in arb_polyhedron(3, 3, 4)) {
        let proj = p.eliminate_dims(&[2]).unwrap();
        for pt in points_of(&p, 4) {
            // Any witness extends to the projection with arbitrary x2.
            prop_assert!(proj.contains(&pt).unwrap(), "projection lost {pt:?}");
        }
    }

    /// The under-approximating projection is sound: every point of the
    /// result has an integer preimage.
    #[test]
    fn under_projection_is_sound(p in arb_polyhedron(3, 3, 3)) {
        let under = p.eliminate_dims_under(&[2]).unwrap();
        let all = points_of(&p, 3);
        for x0 in -3i128..=3 {
            for x1 in -3i128..=3 {
                // `under` ignores x2; test membership with any value.
                if under.contains(&[x0, x1, 0]).unwrap() {
                    let witnessed = all.iter().any(|q| q[0] == x0 && q[1] == x1);
                    prop_assert!(witnessed, "under-projection invented ({x0},{x1})");
                }
            }
        }
    }

    /// Subtraction partitions: pieces are disjoint, live inside A, avoid
    /// B, and together with A∩B cover A.
    #[test]
    fn subtraction_partitions(a in arb_polyhedron(2, 3, 4), bq in arb_polyhedron(2, 3, 4)) {
        let pieces = a.subtract(&bq).unwrap();
        for pt in points_of(&a, 4) {
            let in_b = bq.contains(&pt).unwrap();
            let covering: usize = pieces.iter().filter(|q| q.contains(&pt).unwrap()).count();
            if in_b {
                prop_assert_eq!(covering, 0, "piece overlaps B at {:?}", &pt);
            } else {
                prop_assert_eq!(covering, 1, "point {:?} covered {} times", &pt, covering);
            }
        }
        // Pieces never leak outside A.
        for q in &pieces {
            for pt in points_of(q, 4) {
                prop_assert!(a.contains(&pt).unwrap(), "piece escapes A at {pt:?}");
            }
        }
    }

    /// Scanning enumerates exactly the member points, each once.
    #[test]
    fn scan_is_exact(p in arb_polyhedron(2, 3, 4)) {
        let nest = scan_bounds(&p, &[0, 1]).unwrap();
        let mut scanned = nest.enumerate(&[0, 0], 100_000).unwrap();
        scanned.sort();
        let n = scanned.len();
        scanned.dedup();
        prop_assert_eq!(scanned.len(), n, "duplicate scan points");
        let mut expected = points_of(&p, 4);
        expected.sort();
        prop_assert_eq!(scanned, expected);
    }

    /// Parametric lexmax agrees with brute force at every context.
    #[test]
    fn lexopt_matches_brute_force(p in arb_polyhedron(2, 3, 4)) {
        let solved = match lexopt(&p, &[1], Direction::Max) {
            Ok(s) => s,
            // Unbounded cannot happen (box), but budget exhaustion may.
            Err(_) => return Ok(()),
        };
        for x0 in -4i128..=4 {
            let brute = (-4i128..=4).rev().find(|&x1| p.contains(&[x0, x1]).unwrap());
            // Find the piece covering x0 (if any) and evaluate, solving
            // aux dims by search.
            let mut got = None;
            let mut hits = 0;
            for piece in &solved.pieces {
                let n = piece.context.space().len();
                let mut fixed = piece.context.substitute_dim(0, &LinExpr::constant(n, x0)).unwrap();
                // x1 is unconstrained in the context; aux dims (if any) must
                // be found by search.
                let aux: Vec<usize> = (2..n).collect();
                if aux.is_empty() {
                    if fixed.contains(&vec![x0; n]).unwrap() {
                        hits += 1;
                        let mut pt = vec![0i128; n];
                        pt[0] = x0;
                        got = Some(piece.solution[0].eval(&pt).unwrap());
                    }
                } else {
                    fixed = fixed.substitute_dim(1, &LinExpr::constant(n, 0)).unwrap();
                    let proj = fixed.project_onto(&aux).unwrap();
                    if proj.constraints().is_empty() && !proj.is_obviously_empty() {
                        // Aux dims unconstrained in this piece: any value
                        // witnesses membership — but only if the non-aux
                        // part of the context holds.
                        let mut probe = vec![0i128; n];
                        probe[0] = x0;
                        if fixed.contains(&probe).unwrap() {
                            hits += 1;
                            got = Some(piece.solution[0].eval(&probe).unwrap());
                        }
                    } else if let Some(sols) = proj.enumerate_points(4).unwrap() {
                        if let Some(s) = sols.first() {
                            hits += 1;
                            let mut pt = vec![0i128; n];
                            pt[0] = x0;
                            for (k, &d) in aux.iter().enumerate() {
                                pt[d] = s[k];
                            }
                            got = Some(piece.solution[0].eval(&pt).unwrap());
                        }
                    }
                }
            }
            prop_assert!(hits <= 1, "pieces overlap at x0={x0}");
            prop_assert_eq!(got, brute, "lexmax mismatch at x0={}", x0);
        }
    }

    /// Redundancy removal never changes the set.
    #[test]
    fn redundancy_removal_preserves_set(p in arb_polyhedron(2, 4, 4)) {
        let r = p.remove_redundant().unwrap();
        for x0 in -5i128..=5 {
            for x1 in -5i128..=5 {
                prop_assert_eq!(
                    p.contains(&[x0, x1]).unwrap(),
                    r.contains(&[x0, x1]).unwrap(),
                    "set changed at ({}, {})", x0, x1
                );
            }
        }
        prop_assert!(r.constraints().len() <= p.constraints().len());
    }
}
