//! Epoch-based memo-cache invalidation and knob-guard panic safety.
//!
//! The engine knobs and the cache epoch are process-wide, so every test in
//! this file serializes on one mutex (other test binaries are separate
//! processes and cannot interfere).

use std::sync::Mutex;

use dmc_polyhedra::{cache, stats, Constraint, DimKind, LinExpr, Polyhedron, Space};

static SERIAL: Mutex<()> = Mutex::new(());

/// A small feasible system: 0 <= x <= 3, x + y = 5, 0 <= y <= 9. Cheap to
/// decide but nontrivial enough to go through the memo cache.
fn sample() -> Polyhedron {
    let mut p = Polyhedron::universe(Space::from_dims([
        ("x", DimKind::Index),
        ("y", DimKind::Index),
    ]));
    p.add(Constraint::ge(LinExpr::from_coeffs(vec![1, 0], 0)));
    p.add(Constraint::ge(LinExpr::from_coeffs(vec![-1, 0], 3)));
    p.add(Constraint::eq(LinExpr::from_coeffs(vec![1, 1], -5)));
    p.add(Constraint::ge(LinExpr::from_coeffs(vec![0, 1], 0)));
    p.add(Constraint::ge(LinExpr::from_coeffs(vec![0, -1], 9)));
    p
}

/// A warm cache answers a repeated query out of memory; changing any knob
/// mid-process bumps the epoch and the same query misses again.
#[test]
fn knob_change_invalidates_warm_cache_mid_process() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = stats::KnobGuard::capture();
    stats::set_cache_enabled(true);
    stats::set_prefilters_enabled(true);
    stats::set_feasibility_budget(stats::DEFAULT_FEASIBILITY_BUDGET);
    // The sample is below the default memoization size threshold; admit
    // everything so the queries exercise the cache.
    stats::set_cache_min_constraints(0);
    cache::clear_thread_caches();

    let p = sample();
    let before = stats::snapshot();
    p.integer_feasibility().expect("feasibility");
    let cold = stats::snapshot().since(&before);
    assert!(
        cold.feas_cache_misses >= 1,
        "cold query must miss: {cold:?}"
    );

    let before = stats::snapshot();
    p.integer_feasibility().expect("feasibility");
    let warm = stats::snapshot().since(&before);
    assert!(
        warm.feas_cache_hits >= 1,
        "repeated query must hit: {warm:?}"
    );
    assert_eq!(
        warm.feas_cache_misses, 0,
        "repeated query must not miss: {warm:?}"
    );

    // Any knob change invalidates: the budget here.
    stats::set_feasibility_budget(stats::DEFAULT_FEASIBILITY_BUDGET + 1);
    let before = stats::snapshot();
    p.integer_feasibility().expect("feasibility");
    let after_bump = stats::snapshot().since(&before);
    assert!(
        after_bump.feas_cache_misses >= 1,
        "a knob change must invalidate the warm entry: {after_bump:?}"
    );
}

/// Disabling the caches stops both hits and misses from accruing; the
/// engine still answers (identically, per the parity tests elsewhere).
#[test]
fn disabled_cache_counts_nothing() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = stats::KnobGuard::capture();
    stats::set_cache_enabled(false);
    cache::clear_thread_caches();

    let p = sample();
    let before = stats::snapshot();
    p.integer_feasibility().expect("feasibility");
    p.integer_feasibility().expect("feasibility");
    let d = stats::snapshot().since(&before);
    assert_eq!(d.feas_cache_hits, 0, "{d:?}");
    assert_eq!(d.feas_cache_misses, 0, "{d:?}");
    assert!(d.feasibility_calls >= 2, "both queries ran for real: {d:?}");
}

/// `KnobGuard` restores every knob during unwinding, so a panicking
/// compile cannot leak its tuning into the next in-process one.
#[test]
fn knob_guard_restores_on_panic() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let budget = stats::feasibility_budget();
    let cache_on = stats::cache_enabled();
    let prefilters_on = stats::prefilters_enabled();
    let min_constraints = stats::cache_min_constraints();

    let result = std::panic::catch_unwind(|| {
        let _k = stats::KnobGuard::capture();
        stats::set_feasibility_budget(7);
        stats::set_cache_enabled(!cache_on);
        stats::set_prefilters_enabled(!prefilters_on);
        stats::set_cache_min_constraints(min_constraints + 11);
        panic!("mid-compile failure");
    });
    assert!(result.is_err());
    assert_eq!(
        stats::feasibility_budget(),
        budget,
        "budget restored across panic"
    );
    assert_eq!(
        stats::cache_enabled(),
        cache_on,
        "cache switch restored across panic"
    );
    assert_eq!(
        stats::prefilters_enabled(),
        prefilters_on,
        "prefilters restored across panic"
    );
    assert_eq!(
        stats::cache_min_constraints(),
        min_constraints,
        "size threshold restored across panic"
    );
}
