//! # dmc-store
//!
//! The persistent, sharded artifact store: an on-disk
//! [`ArtifactStore`] backend for [`dmc_core::Session`], so a fresh
//! process warm-starts from the stage artifacts earlier processes
//! computed.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   index.tsv                      # LRU index: seq, stage, key, bytes
//!   shards/<hh>/<tt>-<fp>.art      # hh = first fp byte, tt = stage tag
//!   quarantine/…                   # corrupt payloads, moved aside
//!   tmp/                           # staged writes (write + rename)
//! ```
//!
//! Entries shard by the leading byte of the key fingerprint, so no
//! directory grows past 1/256 of the store. Every artifact file frames
//! its payload:
//!
//! ```text
//! magic "DMCA" | format u8 | stage u8 | key fp 16B | len u64 | payload | payload fp 16B
//! ```
//!
//! where `payload` is the session's versioned codec framing
//! ([`Artifact::encode_payload`]) and `payload fp` is an FNV-1a/128 of
//! the payload bytes.
//!
//! ## Corruption is a miss
//!
//! [`DiskStore::load`] re-fingerprints every payload and fully decodes
//! it before trusting a single byte. A bad magic, mismatched key, short
//! read, fingerprint mismatch or codec error counts as `corrupt`, moves
//! the file into `quarantine/` (for post-mortems; the store never reads
//! it again) and reports a clean miss — the session recomputes the
//! stage. The cache can therefore *never* alter compilation output,
//! only its speed; this is the safety argument for caching at all.
//!
//! ## Deterministic LRU
//!
//! Recency is a logical sequence number persisted in `index.tsv` —
//! never a file mtime — so the eviction order is a pure function of the
//! operation history and replays identically on every filesystem. Both
//! loads and stores touch recency; when a store pushes the resident
//! payload bytes over the configured bound, lowest-sequence entries are
//! evicted until the bound holds again. The bound is hard: the entry
//! just written carries the highest sequence number, so it goes last —
//! a payload bigger than the whole bound is simply never retained.
//! Sequence numbers are unique, so there are no ties to break.
//!
//! The store assumes a **single writer at a time** (the CLI tools open
//! it for one process's lifetime); it takes no locks.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use dmc_core::{Artifact, ArtifactStore, StageId, StoreStats};
use dmc_ir::fp::Fingerprint;

/// The on-disk container format version (the outer framing, distinct
/// from [`dmc_core::CODEC_VERSION`], which versions the payload schema).
pub const FORMAT_VERSION: u8 = 1;

const MAGIC: &[u8; 4] = b"DMCA";
/// Bytes of framing around every payload: magic, format, stage, key
/// fingerprint, length, trailing payload fingerprint.
const HEADER_BYTES: usize = 4 + 1 + 1 + 16 + 8;
const TRAILER_BYTES: usize = 16;

/// FNV-1a/128 over raw bytes — the payload integrity fingerprint. Same
/// constants as `dmc_ir::fp`, applied to the byte stream directly (no
/// structural tagging: the payload is already a canonical encoding).
fn fnv1a128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut state = OFFSET;
    for &b in bytes {
        state ^= u128::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    seq: u64,
    bytes: u64,
}

/// The persistent sharded store. See the [module docs](self) for the
/// layout, integrity and eviction disciplines.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    max_bytes: Option<u64>,
    index: HashMap<(u8, u128), Entry>,
    next_seq: u64,
    bytes_total: u64,
    hits: u64,
    misses: u64,
    corrupt: u64,
    evictions: u64,
    bytes_written: u64,
    bytes_read: u64,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root`, with an
    /// optional bound on resident payload bytes (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory tree or reading the index.
    /// An unparsable index is not an error: the store restarts empty
    /// (stale shard files are lazily dropped as key mismatches).
    pub fn open(root: impl Into<PathBuf>, max_bytes: Option<u64>) -> io::Result<DiskStore> {
        let root = root.into();
        fs::create_dir_all(root.join("shards"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        fs::create_dir_all(root.join("tmp"))?;
        let mut store = DiskStore {
            root,
            max_bytes,
            index: HashMap::new(),
            next_seq: 0,
            bytes_total: 0,
            hits: 0,
            misses: 0,
            corrupt: 0,
            evictions: 0,
            bytes_written: 0,
            bytes_read: 0,
        };
        store.read_index()?;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Resident keys, sorted (stage tag, fingerprint) — a deterministic
    /// inventory for checks and reports.
    pub fn keys(&self) -> Vec<(StageId, Fingerprint)> {
        let mut keys: Vec<_> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .filter_map(|(tag, fp)| Some((StageId::from_tag(tag)?, Fingerprint(fp))))
            .collect()
    }

    /// Files currently quarantined, sorted by name.
    ///
    /// # Errors
    ///
    /// Any I/O error listing the quarantine directory.
    pub fn quarantined(&self) -> io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = fs::read_dir(self.root.join("quarantine"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        files.sort();
        Ok(files)
    }

    /// The artifact file path for a key.
    pub fn path_of(&self, stage: StageId, key: Fingerprint) -> PathBuf {
        let hex = format!("{:032x}", key.0);
        self.root
            .join("shards")
            .join(&hex[..2])
            .join(format!("{:02x}-{hex}.art", stage.tag()))
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.tsv")
    }

    fn read_index(&mut self) -> io::Result<()> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for line in text.lines().skip(1) {
            let mut parts = line.split('\t');
            let (Some(seq), Some(tag), Some(fp), Some(bytes)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let (Ok(seq), Ok(tag), Ok(fp), Ok(bytes)) = (
                seq.parse::<u64>(),
                tag.parse::<u8>(),
                u128::from_str_radix(fp, 16),
                bytes.parse::<u64>(),
            ) else {
                continue;
            };
            self.index.insert((tag, fp), Entry { seq, bytes });
            self.bytes_total += bytes;
            self.next_seq = self.next_seq.max(seq + 1);
        }
        Ok(())
    }

    /// Rewrites the index atomically (write + rename), entries in
    /// sequence order so the file bytes are a pure function of history.
    fn write_index(&self) {
        let mut entries: Vec<_> = self.index.iter().collect();
        entries.sort_unstable_by_key(|(_, e)| e.seq);
        let mut text = String::from("dmc-store v1\n");
        for (&(tag, fp), e) in entries {
            text.push_str(&format!("{}\t{}\t{:032x}\t{}\n", e.seq, tag, fp, e.bytes));
        }
        let tmp = self.root.join("tmp").join("index.tsv");
        // Cache maintenance is best-effort: an I/O failure here loses
        // recency, never data integrity (loads re-verify everything).
        let _ = fs::write(&tmp, text).and_then(|()| fs::rename(&tmp, self.index_path()));
    }

    fn touch(&mut self, stage: StageId, key: Fingerprint) {
        if let Some(e) = self.index.get_mut(&(stage.tag(), key.0)) {
            e.seq = self.next_seq;
            self.next_seq += 1;
        }
    }

    fn drop_entry(&mut self, stage: StageId, key: Fingerprint) {
        if let Some(e) = self.index.remove(&(stage.tag(), key.0)) {
            self.bytes_total -= e.bytes;
        }
    }

    /// Moves a rejected artifact file into `quarantine/`, never
    /// clobbering an earlier capture (a numeric suffix disambiguates).
    fn quarantine(&self, path: &Path) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed.art".to_owned());
        let dir = self.root.join("quarantine");
        let mut target = dir.join(&name);
        let mut n = 0u32;
        while target.exists() {
            n += 1;
            target = dir.join(format!("{name}.{n}"));
        }
        let _ = fs::rename(path, &target);
    }

    /// Reads and fully validates one artifact file. `Ok(None)` means
    /// the file is gone (a plain miss); `Err` means the bytes are wrong
    /// — the caller quarantines.
    fn read_artifact(
        &self,
        stage: StageId,
        key: Fingerprint,
        path: &Path,
    ) -> Result<Option<(Artifact, u64)>, &'static str> {
        let mut file = match fs::File::open(path) {
            Ok(f) => f,
            Err(_) => return Ok(None),
        };
        let mut bytes = Vec::new();
        if file.read_to_end(&mut bytes).is_err() {
            return Err("unreadable file");
        }
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err("short file");
        }
        if &bytes[..4] != MAGIC {
            return Err("bad magic");
        }
        if bytes[4] != FORMAT_VERSION {
            return Err("container format version mismatch");
        }
        if bytes[5] != stage.tag() {
            return Err("stage tag mismatch");
        }
        let mut fp = [0u8; 16];
        fp.copy_from_slice(&bytes[6..22]);
        if u128::from_le_bytes(fp) != key.0 {
            return Err("key fingerprint mismatch");
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[22..30]);
        let len = u64::from_le_bytes(len8) as usize;
        if bytes.len() != HEADER_BYTES + len + TRAILER_BYTES {
            return Err("payload length mismatch");
        }
        let payload = &bytes[HEADER_BYTES..HEADER_BYTES + len];
        let mut want = [0u8; 16];
        want.copy_from_slice(&bytes[HEADER_BYTES + len..]);
        if fnv1a128(payload) != u128::from_le_bytes(want) {
            return Err("payload fingerprint mismatch");
        }
        let artifact =
            Artifact::decode_payload(stage, payload).map_err(|_| "payload decode failure")?;
        Ok(Some((artifact, len as u64)))
    }

    /// Evicts lowest-sequence entries until the byte bound holds. The
    /// bound is hard: the just-written entry has the highest sequence,
    /// so it is evicted only when it alone exceeds the bound.
    fn evict_to_bound(&mut self) {
        let Some(max) = self.max_bytes else { return };
        while self.bytes_total > max {
            let victim = self
                .index
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(&k, _)| k);
            let Some((tag, fp)) = victim else { break };
            let Some(stage) = StageId::from_tag(tag) else {
                self.drop_entry_raw(tag, fp);
                continue;
            };
            let path = self.path_of(stage, Fingerprint(fp));
            let _ = fs::remove_file(path);
            self.drop_entry_raw(tag, fp);
            self.evictions += 1;
        }
    }

    fn drop_entry_raw(&mut self, tag: u8, fp: u128) {
        if let Some(e) = self.index.remove(&(tag, fp)) {
            self.bytes_total -= e.bytes;
        }
    }
}

impl ArtifactStore for DiskStore {
    fn load(&mut self, stage: StageId, key: Fingerprint) -> Option<Artifact> {
        if !self.index.contains_key(&(stage.tag(), key.0)) {
            self.misses += 1;
            return None;
        }
        let path = self.path_of(stage, key);
        match self.read_artifact(stage, key, &path) {
            Ok(Some((artifact, len))) => {
                self.hits += 1;
                self.bytes_read += len;
                self.touch(stage, key);
                self.write_index();
                Some(artifact)
            }
            Ok(None) => {
                // File vanished out from under the index: a plain miss.
                self.misses += 1;
                self.drop_entry(stage, key);
                self.write_index();
                None
            }
            Err(_why) => {
                self.misses += 1;
                self.corrupt += 1;
                self.quarantine(&path);
                self.drop_entry(stage, key);
                self.write_index();
                None
            }
        }
    }

    fn contains(&mut self, stage: StageId, key: Fingerprint) -> bool {
        self.index.contains_key(&(stage.tag(), key.0))
    }

    fn store(&mut self, stage: StageId, key: Fingerprint, artifact: &Artifact) {
        let payload = artifact.encode_payload(stage);
        let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len() + TRAILER_BYTES);
        bytes.extend_from_slice(MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.push(stage.tag());
        bytes.extend_from_slice(&key.0.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a128(&payload).to_le_bytes());

        let path = self.path_of(stage, key);
        let tmp = self
            .root
            .join("tmp")
            .join(format!("{:02x}-{:032x}.art", stage.tag(), key.0));
        let staged = path
            .parent()
            .map(fs::create_dir_all)
            .map(|r| r.is_ok())
            .unwrap_or(false)
            && fs::File::create(&tmp)
                .and_then(|mut f| f.write_all(&bytes))
                .is_ok()
            && fs::rename(&tmp, &path).is_ok();
        if !staged {
            // Best-effort cache: a failed write leaves the store as it
            // was (minus any tmp litter), never half an entry.
            let _ = fs::remove_file(&tmp);
            return;
        }
        self.drop_entry(stage, key);
        let len = payload.len() as u64;
        self.index.insert(
            (stage.tag(), key.0),
            Entry {
                seq: self.next_seq,
                bytes: len,
            },
        );
        self.next_seq += 1;
        self.bytes_total += len;
        self.bytes_written += len;
        self.evict_to_bound();
        self.write_index();
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits,
            misses: self.misses,
            corrupt: self.corrupt,
            evictions: self.evictions,
            entries: self.index.len() as u64,
            bytes: self.bytes_total,
            bytes_written: self.bytes_written,
            bytes_read: self.bytes_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        // CARGO_TARGET_TMPDIR exists only for integration tests; unit
        // tests get a process-unique corner of the system temp dir.
        let dir = std::env::temp_dir()
            .join(format!("dmc-store-unit-{}", std::process::id()))
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn program_artifact(n: usize) -> Artifact {
        let body: String = (0..n)
            .map(|i| format!("for i = 0 to N - 1 {{ A[i] = {i}.0; }} "))
            .collect();
        let src = format!("param N; array A[N]; {body}");
        Artifact::Program(Arc::new(dmc_ir::parse(&src).expect("parses")))
    }

    fn key(i: u128) -> Fingerprint {
        Fingerprint(i.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    #[test]
    fn artifacts_persist_across_opens() {
        let dir = tmpdir("persist");
        let art = program_artifact(2);
        {
            let mut s = DiskStore::open(&dir, None).unwrap();
            assert!(s.load(StageId::Parse, key(1)).is_none());
            s.store(StageId::Parse, key(1), &art);
            assert!(s.contains(StageId::Parse, key(1)));
        }
        let mut s = DiskStore::open(&dir, None).unwrap();
        let back = s.load(StageId::Parse, key(1)).expect("persisted");
        match (&back, &art) {
            (Artifact::Program(b), Artifact::Program(a)) => assert_eq!(b, a),
            other => panic!("wrong variant: {other:?}"),
        }
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.corrupt), (1, 0, 0));
        assert_eq!(st.entries, 1);
        assert!(st.bytes > 0 && st.bytes_read == st.bytes);
    }

    #[test]
    fn lru_eviction_is_size_bounded_and_in_sequence_order() {
        let dir = tmpdir("evict");
        let art = program_artifact(1);
        let one = art.encode_payload(StageId::Parse).len() as u64;
        // Room for two payloads, not three.
        let mut s = DiskStore::open(&dir, Some(2 * one)).unwrap();
        s.store(StageId::Parse, key(1), &art);
        s.store(StageId::Parse, key(2), &art);
        assert_eq!(s.stats().evictions, 0);
        // Touch key(1): key(2) becomes least recent.
        assert!(s.load(StageId::Parse, key(1)).is_some());
        s.store(StageId::Parse, key(3), &art);
        assert_eq!(s.stats().evictions, 1);
        assert!(s.contains(StageId::Parse, key(1)));
        assert!(!s.contains(StageId::Parse, key(2)));
        assert!(s.contains(StageId::Parse, key(3)));
        assert!(!s.path_of(StageId::Parse, key(2)).exists());
        assert!(s.stats().bytes <= 2 * one);
        // The bound is hard: a payload bigger than the whole bound is
        // written and immediately evicted, never retained.
        let dir2 = tmpdir("evict-tiny");
        let mut t = DiskStore::open(&dir2, Some(1)).unwrap();
        t.store(StageId::Parse, key(7), &art);
        assert!(!t.contains(StageId::Parse, key(7)));
        assert_eq!(t.stats().entries, 0);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn corruption_quarantines_and_misses_cleanly() {
        let dir = tmpdir("corrupt");
        let art = program_artifact(3);
        let mut s = DiskStore::open(&dir, None).unwrap();
        s.store(StageId::Parse, key(5), &art);
        let path = s.path_of(StageId::Parse, key(5));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(s.load(StageId::Parse, key(5)).is_none());
        let st = s.stats();
        assert_eq!((st.corrupt, st.misses, st.hits), (1, 1, 0));
        assert_eq!(st.entries, 0);
        assert!(!path.exists(), "corrupt file removed from the shard");
        assert_eq!(s.quarantined().unwrap().len(), 1);
        // The slot is reusable and the replacement loads.
        s.store(StageId::Parse, key(5), &art);
        assert!(s.load(StageId::Parse, key(5)).is_some());
    }

    #[test]
    fn truncation_is_corruption() {
        let dir = tmpdir("truncate");
        let art = program_artifact(2);
        let mut s = DiskStore::open(&dir, None).unwrap();
        s.store(StageId::StmtInfo, key(9), &{
            let Artifact::Program(p) = &art else {
                unreachable!()
            };
            Artifact::StmtInfo(Arc::new(p.statements()))
        });
        let path = s.path_of(StageId::StmtInfo, key(9));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(s.load(StageId::StmtInfo, key(9)).is_none());
        assert_eq!(s.stats().corrupt, 1);
        assert_eq!(s.quarantined().unwrap().len(), 1);
    }

    #[test]
    fn index_and_stats_are_deterministic() {
        let run = |name: &str| {
            let dir = tmpdir(name);
            let mut s = DiskStore::open(&dir, Some(10_000)).unwrap();
            for i in 0..6 {
                s.store(
                    StageId::Parse,
                    key(i),
                    &program_artifact(1 + (i as usize % 3)),
                );
            }
            let _ = s.load(StageId::Parse, key(2));
            let _ = s.load(StageId::Parse, key(100));
            (
                fs::read_to_string(dir.join("index.tsv")).unwrap(),
                s.stats(),
            )
        };
        let (ia, sa) = run("det-a");
        let (ib, sb) = run("det-b");
        assert_eq!(ia, ib);
        assert_eq!(sa, sb);
    }
}
