//! The paper's §7 evaluation: LU decomposition with a cyclic decomposition
//! (Figures 11–14).
//!
//! Prints the Last Write Trees (Figure 12), the generated computation and
//! aggregated communication code (Figure 13 artifacts), verifies the
//! distributed execution against the sequential interpreter at a small
//! size, and then reproduces the Figure 14 performance series — all
//! through one compilation [`Session`], so the processor-count series
//! reuses every grid-independent analysis stage instead of recompiling
//! from scratch.
//!
//! ```sh
//! cargo run --release --example lu              # default sizes
//! cargo run --release --example lu -- 128 256   # explicit matrix sizes
//! ```

use std::collections::{BTreeMap, HashMap};

use dmc_core::{CompileInput, Options, Session};
use dmc_decomp::{CompDecomp, DataDecomp, ProcGrid};
use dmc_machine::MachineConfig;

const LU_SRC: &str = "param N; array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}";

fn lu_input(nproc: i128) -> CompileInput {
    let program = dmc_ir::parse(LU_SRC).expect("LU parses");
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::cyclic_1d(0, "i2"));
    comps.insert(1, CompDecomp::cyclic_1d(1, "i2"));
    let mut initial = HashMap::new();
    initial.insert("X".to_string(), DataDecomp::cyclic_1d("X", 2, 0));
    CompileInput {
        program,
        comps,
        initial,
        grid: ProcGrid::line(nproc),
    }
}

/// The scaled iPSC/860 model used for the Figure 14 series: the paper ran
/// N = 1024/2048; we run smaller N and slow the processor by the linear
/// scale factor 2048/N_max so the communication-to-computation ratio of
/// the large-scale experiment is preserved (see EXPERIMENTS.md).
fn scaled_config(scale: f64) -> MachineConfig {
    let mut c = MachineConfig::ipsc860();
    c.flop_time *= scale;
    c
}

fn main() {
    let args: Vec<i128> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let sizes: Vec<i128> = if args.is_empty() {
        vec![128, 256]
    } else {
        args
    };

    // --- Figure 12: the LWT for the read X[i1][i3] ---
    let program = dmc_ir::parse(LU_SRC).expect("LU parses");
    let lwt = dmc_dataflow::build_lwt(&program, 1, 2).expect("analysis succeeds");
    println!("=== Figure 12: Last Write Tree for X[i1][i3] ===\n{lwt}");

    // --- Figure 13 artifacts: generated computation code ---
    let stmts = program.statements();
    let comp2 = CompDecomp::cyclic_1d(1, "i2");
    let code =
        dmc_codegen::computation_code(&program, &stmts[1], &comp2).expect("codegen succeeds");
    println!("=== Figure 13 (excerpt): computation code for S2, cyclic p = i2 ===");
    println!("{}", dmc_codegen::render(&code));

    // Local memory: the paper allocates ((N+P)/P) x (N+1) per processor.
    let comp1 = CompDecomp::cyclic_1d(0, "i2");
    let lb = dmc_codegen::bounding_box(&program, "X", &[(&stmts[0], &comp1), (&stmts[1], &comp2)])
        .expect("memory analysis succeeds")
        .expect("X is touched");
    let env = |v: &str| match v {
        "p0" => 5,
        "N" => 64,
        _ => 0,
    };
    println!(
        "local memory on virtual processor 5 at N=64: {} elements (full matrix {})",
        lb.size_at(&env),
        65 * 65
    );

    // --- correctness at a small size ---
    // One session carries the whole example: the processor-count series
    // below reuses every grid-independent analysis stage from this first
    // compile (the grid only enters the stage keys at the optimization
    // stage).
    let mut session = Session::new();
    let compiled = session
        .compile(lu_input(4), Options::full())
        .expect("compilation succeeds");
    let r = session
        .run(
            &compiled,
            &[24],
            &MachineConfig::ipsc860(),
            true,
            10_000_000,
        )
        .expect("simulation succeeds");
    let mut env = HashMap::new();
    env.insert("N".to_string(), 24i128);
    let seq = dmc_ir::interp::run(&compiled.input.program, &env).expect("sequential run");
    let a = r
        .memory
        .as_ref()
        .expect("values")
        .array("X")
        .expect("X")
        .as_slice();
    let b = seq.array("X").expect("X").as_slice();
    assert!(a
        .iter()
        .zip(b)
        .all(|(x, y)| x == y || (x.is_nan() && y.is_nan())));
    println!("\nN=24, P=4: distributed LU matches the sequential interpreter ✓\n");

    // --- Figure 14: performance series ---
    println!("=== Figure 14: LU performance (simulated iPSC/860, scaled) ===");
    println!(
        "{:>6} {:>4} {:>12} {:>10} {:>9} {:>10}",
        "N", "P", "time (s)", "MFLOPS", "speedup", "messages"
    );
    let nmax = *sizes.iter().max().expect("nonempty sizes");
    let scale = (2048 / nmax).max(1) as f64;
    for &n in &sizes {
        let mut t1 = None;
        for p in [1i128, 2, 4, 8, 16, 32] {
            let compiled = session
                .compile(lu_input(p), Options::full())
                .expect("compilation succeeds");
            let r = session
                .run(&compiled, &[n], &scaled_config(scale), false, 500_000_000)
                .expect("simulation succeeds");
            let t = r.stats.time;
            if t1.is_none() {
                t1 = Some(t);
            }
            println!(
                "{:>6} {:>4} {:>12.4} {:>10.1} {:>9.2} {:>10}",
                n,
                p,
                t,
                r.stats.mflops(),
                r.stats.speedup_vs(t1.expect("set")),
                r.stats.messages
            );
        }
    }
    let s = session.stats();
    println!(
        "\nsession stage graph over the whole series: {} hit(s), {} miss(es) \
         ({:.0}% of stage lookups served from the store)",
        s.stage_hits,
        s.stage_misses,
        100.0 * s.stage_hits as f64 / (s.stage_hits + s.stage_misses).max(1) as f64
    );
}
