//! The paper's §2.2.1 motivating example: row sums accumulated in
//! `X[i][0]`, parallelized as a *doacross pipeline* over column blocks —
//! the computation decomposition the owner-computes rule cannot express,
//! because every processor writes the same location `X[i][0]` at different
//! times.
//!
//! ```sh
//! cargo run --release --example pipeline_sum
//! ```

use std::collections::{BTreeMap, HashMap};

use dmc_core::{CompileInput, Options, Session};
use dmc_decomp::{owner_computes, CompDecomp, DataDecomp, ProcGrid};
use dmc_machine::MachineConfig;

const SRC: &str = "param N; array X[N + 1][N + 1];
for i = 0 to N {
  for j = 1 to N {
    X[i][0] = X[i][0] + X[i][j];
  }
}";

fn main() {
    let program = dmc_ir::parse(SRC).expect("parses");
    let stmts = program.statements();

    // The owner-computes rule fails here: X is distributed by column
    // blocks, but the written location X[i][0] lives on one processor —
    // owner-computes would serialize the whole sum there.
    let cols = DataDecomp::block_1d("X", 2, 1, 4);
    match owner_computes(&cols, &stmts[0]) {
        Ok(c) => println!("owner-computes forces: {c}  (all work on the X[i][0] owner!)"),
        Err(e) => println!("owner-computes fails: {e}"),
    }

    // The value-centric compiler instead takes the pipelined computation
    // decomposition directly: iteration (i, j) runs on the owner of column
    // block j; the running sum X[i][0] flows processor to processor.
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "j", 4));
    let input = CompileInput {
        program: program.clone(),
        comps,
        initial: HashMap::new(),
        grid: ProcGrid::line(4),
    };
    let mut session = Session::new();
    let compiled = session.compile(input, Options::full()).expect("compiles");
    println!(
        "\npipelined decomposition compiled: {} communication set(s)",
        compiled.comm.len()
    );
    for lwt in &compiled.lwts {
        if lwt.read_no == 0 {
            println!("{lwt}");
        }
    }

    let n = 15i128;
    let r = session
        .run(&compiled, &[n], &MachineConfig::ipsc860(), true, 1_000_000)
        .expect("simulates");
    let mut env = HashMap::new();
    env.insert("N".to_string(), n);
    let seq = dmc_ir::interp::run(&program, &env).expect("sequential");
    let a = r
        .memory
        .as_ref()
        .expect("values")
        .array("X")
        .expect("X")
        .as_slice();
    let b = seq.array("X").expect("X").as_slice();
    assert!(a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9));
    println!(
        "N={n}, P=4: pipelined row sums match the sequential result ✓ \
         ({} messages, {} words)",
        r.stats.messages, r.stats.words
    );
}
