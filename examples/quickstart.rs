//! Quickstart: compile the paper's running example (Figure 2) for a
//! 4-processor machine and run it on the simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::{BTreeMap, HashMap};

use dmc_core::{compile, run, CompileInput, Options};
use dmc_decomp::{CompDecomp, ProcGrid};
use dmc_machine::MachineConfig;

fn main() {
    // The paper's Figure 2: a 2-deep nest with a distance-3 flow of values.
    let program = dmc_ir::parse(
        "param T, N;
         array X[N + 1];
         for t = 0 to T {
           for i = 3 to N {
             X[i] = X[i - 3];
           }
         }",
    )
    .expect("valid program");
    println!("source program:\n{program}");

    // The computation decomposition of Figure 5: blocks of 32 iterations of
    // the i loop on a linear processor array.
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", 32));

    let input = CompileInput {
        program: program.clone(),
        comps,
        initial: HashMap::new(), // live-in values replicated
        grid: ProcGrid::line(4),
    };
    let compiled = compile(input, Options::full()).expect("compilation succeeds");

    // The analysis artifacts: one Last Write Tree per read (Figure 3).
    for lwt in &compiled.lwts {
        println!("{lwt}");
    }
    println!("{} communication set(s) after optimization", compiled.comm.len());

    // Execute on the simulated machine, checking values against the
    // sequential semantics (values mode).
    let result = run(&compiled, &[10, 127], &MachineConfig::ipsc860(), true, 1_000_000)
        .expect("simulation succeeds");
    let stats = &result.stats;
    println!(
        "simulated: {:.3} ms wall, {} messages, {} words, {:.2} MFLOPS",
        stats.time * 1e3,
        stats.messages,
        stats.words,
        stats.mflops()
    );

    // And confirm against the sequential interpreter.
    let mut env = HashMap::new();
    env.insert("T".to_string(), 10i128);
    env.insert("N".to_string(), 127i128);
    let seq = dmc_ir::interp::run(&program, &env).expect("sequential run");
    let dist = result.memory.expect("values mode");
    let a = dist.array("X").expect("X").as_slice();
    let b = seq.array("X").expect("X").as_slice();
    assert_eq!(a, b, "distributed result must equal the sequential result");
    println!("distributed result matches the sequential interpreter ✓");
}
