//! Quickstart: compile the paper's running example (Figure 2) for a
//! 4-processor machine and run it on the simulator — through a
//! compilation [`Session`], the front door of the pipeline. A session
//! caches every stage of the compile by a content fingerprint, so
//! follow-up compiles (new processor counts, new parameter values,
//! edited programs) only re-run the stages whose inputs changed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::{BTreeMap, HashMap};

use dmc_core::{CompileInput, Options, Session};
use dmc_decomp::{CompDecomp, ProcGrid};
use dmc_machine::MachineConfig;

fn main() {
    let mut session = Session::new();

    // The paper's Figure 2: a 2-deep nest with a distance-3 flow of
    // values. Parsing is itself a cached stage, keyed by the source text.
    let program = session
        .parse(
            "param T, N;
             array X[N + 1];
             for t = 0 to T {
               for i = 3 to N {
                 X[i] = X[i - 3];
               }
             }",
        )
        .expect("valid program");
    println!("source program:\n{program}");

    // The computation decomposition of Figure 5: blocks of 32 iterations of
    // the i loop on a linear processor array.
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", 32));

    let input = CompileInput {
        program: program.clone(),
        comps,
        initial: HashMap::new(), // live-in values replicated
        grid: ProcGrid::line(4),
    };
    let compiled = session
        .compile(input, Options::full())
        .expect("compilation succeeds");

    // The analysis artifacts: one Last Write Tree per read (Figure 3).
    for lwt in &compiled.lwts {
        println!("{lwt}");
    }
    println!(
        "{} communication set(s) after optimization",
        compiled.comm.len()
    );

    // Execute on the simulated machine, checking values against the
    // sequential semantics (values mode). The schedule is cached too:
    // running again at the same parameters would rebuild nothing.
    let result = session
        .run(
            &compiled,
            &[10, 127],
            &MachineConfig::ipsc860(),
            true,
            1_000_000,
        )
        .expect("simulation succeeds");
    let stats = &result.stats;
    println!(
        "simulated: {:.3} ms wall, {} messages, {} words, {:.2} MFLOPS",
        stats.time * 1e3,
        stats.messages,
        stats.words,
        stats.mflops()
    );

    // And confirm against the sequential interpreter.
    let mut env = HashMap::new();
    env.insert("T".to_string(), 10i128);
    env.insert("N".to_string(), 127i128);
    let seq = dmc_ir::interp::run(&program, &env).expect("sequential run");
    let dist = result.memory.expect("values mode");
    let a = dist.array("X").expect("X").as_slice();
    let b = seq.array("X").expect("X").as_slice();
    assert_eq!(a, b, "distributed result must equal the sequential result");
    println!("distributed result matches the sequential interpreter ✓");

    // Retarget the same program to 8 processors. The grid only enters the
    // stage keys at the optimization stage, so the data-flow analysis
    // (statement info, Last Write Trees, communication sets) is served
    // straight from the session's store.
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", 32));
    let retargeted = CompileInput {
        program: program.clone(),
        comps,
        initial: HashMap::new(),
        grid: ProcGrid::line(8),
    };
    session
        .compile(retargeted, Options::full())
        .expect("retarget compiles");
    let s = session.stats();
    println!(
        "retargeted to 8 processors: {} stage hit(s), {} miss(es) across the session",
        s.stage_hits, s.stage_misses
    );
}
