//! A 3-point relaxation stencil (the paper's §2.2.1 example of overlapped
//! data decompositions): blocked computation with halo exchange derived
//! value-centrically, plus the effect of each §6 optimization on traffic.
//!
//! ```sh
//! cargo run --release --example stencil
//! ```

use std::collections::{BTreeMap, HashMap};

use dmc_core::{compile, message_stats, run, CompileInput, Options};
use dmc_decomp::{CompDecomp, DataDecomp, DimMap, ProcGrid};
use dmc_ir::Aff;
use dmc_machine::MachineConfig;

const SRC: &str = "param T, N; array X[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    X[i] = 0.25 * (X[i] + X[i - 1] + X[i + 1]);
  }
}";

fn input(block: i128, nproc: i128, overlap: bool) -> CompileInput {
    let program = dmc_ir::parse(SRC).expect("stencil parses");
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", block));
    let mut initial = HashMap::new();
    let map = if overlap {
        DimMap::block(Aff::var("a0"), block).with_overlap(1, 1)
    } else {
        DimMap::block(Aff::var("a0"), block)
    };
    initial.insert("X".to_string(), DataDecomp::from_maps("X", 1, vec![map]));
    CompileInput {
        program,
        comps,
        initial,
        grid: ProcGrid::line(nproc),
    }
}

fn main() {
    let (t, n) = (7i128, 255i128);

    // Correctness first.
    let compiled = compile(input(32, 8, false), Options::full()).expect("compiles");
    let r = run(
        &compiled,
        &[t, n],
        &MachineConfig::ipsc860(),
        true,
        10_000_000,
    )
    .expect("simulates");
    let mut env = HashMap::new();
    env.insert("T".to_string(), t);
    env.insert("N".to_string(), n);
    let seq = dmc_ir::interp::run(&compiled.input.program, &env).expect("sequential");
    let a = r
        .memory
        .as_ref()
        .expect("values")
        .array("X")
        .expect("X")
        .as_slice();
    let b = seq.array("X").expect("X").as_slice();
    assert!(a
        .iter()
        .zip(b)
        .all(|(x, y)| x == y || (x - y).abs() < 1e-12));
    println!("T={t}, N={n}, P=8: distributed stencil matches the sequential interpreter ✓\n");

    // Traffic under different option sets.
    println!("{:<44} {:>10} {:>10}", "configuration", "messages", "words");
    let cases: Vec<(&str, Options, bool)> = vec![
        ("full optimizer", Options::full(), false),
        (
            "no aggregation",
            {
                let mut o = Options::full();
                o.aggregate = false;
                o
            },
            false,
        ),
        (
            "no self-reuse elimination",
            {
                let mut o = Options::full();
                o.self_reuse = false;
                o.cross_set_reuse = false;
                o
            },
            false,
        ),
        (
            "full + overlapped initial decomposition",
            Options::full(),
            true,
        ),
        (
            "location-centric baseline",
            Options::location_centric(),
            false,
        ),
    ];
    for (name, options, overlap) in cases {
        let compiled = compile(input(32, 8, overlap), options).expect("compiles");
        let (msgs, _, words) = message_stats(&compiled, &[t, n], 10_000_000).expect("stats");
        println!("{name:<44} {msgs:>10} {words:>10}");
    }
    println!("\nEvery border value flows exactly once per sweep in all configurations —");
    println!("the stencil is already minimal traffic. The overlapped initial decomposition");
    println!("removes only the t=0 live-in transfers; produced halo values still flow.");
}
