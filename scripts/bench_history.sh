#!/usr/bin/env bash
# Record one benchmark snapshot into the append-only bench history.
#
#   scripts/bench_history.sh                 # full perfstats run, then record
#   scripts/bench_history.sh --no-measure    # record the existing snapshot
#
# The history lives in .bench_history.jsonl: one deterministic JSONL
# record per snapshot, keyed by a meta block (commit, host, config
# fingerprint). Snapshots that carry the persistent-store section
# (`store` in BENCH_pipeline.json) record its cold/warm traffic too;
# older snapshots omit the key and round-trip unchanged. Inspect with
#
#   cargo run --release -p dmc-bench --bin dmc-bench-explain -- --trend 10
#   cargo run --release -p dmc-bench --bin dmc-bench-explain -- --explain @0 @last
#   cargo run --release -p dmc-bench --bin dmc-bench-explain -- --html dash.html
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
snapshot="BENCH_pipeline.json"
history=".bench_history.jsonl"

if [[ "${1:-}" != "--no-measure" ]]; then
    cargo run --release -p dmc-bench --bin perfstats -- --out "$snapshot"
fi

cargo run --release -p dmc-bench --bin dmc-bench-explain -- \
    --record --snapshot "$snapshot" --history "$history"

if [[ "$(wc -l < "$history")" -ge 2 ]]; then
    echo
    echo "What moved since the previous record:"
    cargo run --release -p dmc-bench --bin dmc-bench-explain -- \
        --explain "@$(($(wc -l < "$history") - 2))" @last --history "$history" \
        || true # a non-empty narrative exits 1; recording it is not a failure
fi
