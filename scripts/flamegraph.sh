#!/usr/bin/env bash
# Work-unit flamegraphs for the polyhedral engine: runs dmc-profile over
# the four paper workloads and leaves one collapsed-stack file plus one
# Hotspots report per workload in target/profile/.
#
#   scripts/flamegraph.sh              # all workloads
#   scripts/flamegraph.sh stencil      # one workload
#
# The .collapsed files are in Brendan Gregg's folded-stack format, with
# frames being attribution contexts (workload;stmt;read;pass;operation)
# and weights being deterministic charged work units — NOT wall-clock
# samples — so graphs are byte-identical across hosts, worker counts and
# cache states, and two graphs from different commits diff meaningfully.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
workload="${1:-all}"
out="target/profile"

cargo run --release -p dmc-bench --bin dmc-profile -- \
    --workload "$workload" --out-dir "$out"

# Smoke: every requested workload must have left a non-empty
# collapsed-stack file — an empty graph means the ledger charged nothing
# and the profile is useless, however cleanly dmc-profile exited.
if [[ "$workload" == "all" ]]; then
    workloads=(lu stencil figure2 xy)
else
    workloads=("$workload")
fi
for w in "${workloads[@]}"; do
    f="$out/profile_${w}.collapsed"
    if [[ ! -s "$f" ]]; then
        echo "flamegraph.sh: $f is missing or empty" >&2
        exit 1
    fi
done

echo
echo "Collapsed stacks in $out/. Render an SVG with any folded-stack tool:"
echo "  flamegraph.pl $out/profile_stencil.collapsed > stencil.svg"
echo "  inferno-flamegraph $out/profile_stencil.collapsed > stencil.svg"
echo "or drop the file into https://www.speedscope.app/ (paste as folded)."
