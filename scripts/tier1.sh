#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): offline release build + full test
# suite, then optionally regenerate the performance-harness JSON.
#
#   scripts/tier1.sh           # build + test (offline)
#   scripts/tier1.sh --bench   # also run perfstats -> BENCH_pipeline.json
set -euo pipefail
cd "$(dirname "$0")/.."

# The container has no registry access; everything must resolve from the
# workspace itself.
export CARGO_NET_OFFLINE=true

cargo build --release
cargo build --release --examples
cargo test -q --workspace

# Lint gates: the workspace (every target, examples and benches included)
# must be clippy-clean at -D warnings and rustfmt-clean.
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Observability smoke: trace the stencil workload and validate the Chrome
# export (well-formed JSON, balanced begin/end pairs, monotonic per-lane
# timestamps) plus full message attribution in the explain report.
cargo run --release -p dmc-bench --bin dmc-trace -- \
    --workload stencil --out-dir target/trace-tier1 --check

# Machine telemetry: export the stencil simulation's metrics (traffic
# matrix, size/latency histograms, per-processor breakdowns) and verify
# the Prometheus document validates and its totals agree exactly with the
# simulator's statistics.
cargo run --release -p dmc-bench --bin dmc-metrics -- \
    --workload stencil --out-dir target/metrics-tier1 --check

# Work-ledger profiler: profile the stencil and lu workloads and
# self-validate the ledger (totals reconcile exactly with the engine's
# PolyStats counters, >= 90% of work units carry an attribution context,
# and the collapsed-stack flamegraph is byte-identical for 1 and 4
# workers). lu is the workload that spills past the inline constraint
# buffer, so it also exercises the heap-allocation accounting.
cargo run --release -p dmc-bench --bin dmc-profile -- \
    --workload stencil --out-dir target/profile-tier1 --check
cargo run --release -p dmc-bench --bin dmc-profile -- \
    --workload lu --out-dir target/profile-tier1-lu --check

# Critical-path & blame analysis: rebuild the simulated run as an exact
# integer-nanosecond event DAG and assert every invariant (longest path
# == simulator finish, zero slack iff critical, blame tiles the makespan
# per processor, incremental what-ifs match brute force, byte-identical
# reports across worker counts). stencil is the cheap smoke; lu is the
# multicast-heavy workload with real link contention.
cargo run --release -p dmc-bench --bin dmc-critpath -- \
    --workload stencil --out-dir target/critpath-tier1 --check
cargo run --release -p dmc-bench --bin dmc-critpath -- \
    --workload lu --out-dir target/critpath-tier1-lu --check

# Stage-graph sessions: sweep every workload over four processor counts
# inside one compilation session and verify that the cached artifacts are
# identical to the one-shot pipeline's, that at least half of all stage
# lookups hit, that recompiling an identical input re-runs nothing, and
# that the explain report carries the Reuse section.
cargo run --release -p dmc-bench --bin dmc-session -- \
    --out-dir target/session-tier1 --check

# Persistent artifact store: cold/warm byte identity over all four
# workloads (a fresh process serves everything from disk and recomputes
# nothing), deterministic LRU eviction under a tiny byte bound, and
# corruption-as-miss (every bit-flipped artifact is quarantined and
# recomputed, never trusted).
cargo run --release -p dmc-bench --bin dmc-store -- \
    --check --cache-dir target/dmc-store-tier1

# Warm start across processes: a second dmc-session process against the
# same cache directory must serve its stage lookups from disk and stay
# identical to the one-shot pipeline (--check asserts both).
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
cargo run --release -p dmc-bench --bin dmc-session -- \
    --out-dir target/session-tier1-cold --cache-dir "$store_dir" --check
cargo run --release -p dmc-bench --bin dmc-session -- \
    --out-dir target/session-tier1-warm --cache-dir "$store_dir" --check

# Compile journal: serve the four benchmark workloads through one
# journaling session, write the JSONL journal, and verify it round-trips
# through disk, self-diffs clean, and replays byte-identically (every
# deterministic field) through a fresh session.
cargo run --release -p dmc-bench --bin dmc-journal -- \
    --check --out-dir target/journal-tier1

# Bench regression gate: re-measure the pipeline (--quick: one timing
# rep — every deterministic field is rep-independent) and diff against
# the committed snapshot. Correctness fields (message/transmission/word
# counts, simulated time, identity flags) and the deterministic
# work-unit, allocation and polyops totals must match exactly; the
# timing tolerance is generous (150%) because tier-1 runs on arbitrary
# shared hosts where wall-clock is noise — committed-snapshot refreshes
# use the strict default (15%) via `dmc-bench-diff old new`.
cargo run --release -p dmc-bench --bin perfstats -- --quick --out target/BENCH_tier1.json
cargo run --release -p dmc-bench --bin dmc-bench-diff -- \
    BENCH_pipeline.json target/BENCH_tier1.json --time-tol 1.5

# Regression forensics: self-check the bench history + explainer against
# the committed snapshot — its tilings must be internally exact (contexts
# tile work_units, blame tiles nproc x makespan, §6 pass counts tile
# messages, per-stage counts tile the session totals), a self-explain
# must be empty, the history must round-trip byte-identically through
# disk, injected drift must explain with zero residue, and the HTML
# dashboard must render byte-identically for 1- and 4-thread recordings.
cargo run --release -p dmc-bench --bin dmc-bench-explain -- --check

# Flamegraph wrapper smoke: the stencil profile must leave a non-empty
# collapsed-stack file (the script exits nonzero otherwise).
scripts/flamegraph.sh stencil

if [[ "${1:-}" == "--bench" ]]; then
    cargo run --release -p dmc-bench --bin perfstats
fi

echo "tier-1 OK"
