#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): offline release build + full test
# suite, then optionally regenerate the performance-harness JSON.
#
#   scripts/tier1.sh           # build + test (offline)
#   scripts/tier1.sh --bench   # also run perfstats -> BENCH_pipeline.json
set -euo pipefail
cd "$(dirname "$0")/.."

# The container has no registry access; everything must resolve from the
# workspace itself.
export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q --workspace

# Observability smoke: trace the stencil workload and validate the Chrome
# export (well-formed JSON, balanced begin/end pairs, monotonic per-lane
# timestamps) plus full message attribution in the explain report.
cargo run --release -p dmc-bench --bin dmc-trace -- \
    --workload stencil --out-dir target/trace-tier1 --check

if [[ "${1:-}" == "--bench" ]]; then
    cargo run --release -p dmc-bench --bin perfstats
fi

echo "tier-1 OK"
