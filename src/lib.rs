//! # dmc
//!
//! A Rust reproduction of Amarasinghe & Lam, *"Communication Optimization
//! and Code Generation for Distributed Memory Machines"* (PLDI 1993): the
//! value-centric SPMD communication generator, with every substrate it
//! needs built from scratch — an exact integer polyhedral engine, exact
//! array data-flow analysis (Last Write Trees), decomposition algebra,
//! communication-set optimization, SPMD code generation, and a
//! deterministic distributed-memory machine simulator.
//!
//! This facade crate re-exports the individual crates under stable module
//! names; see each for its own documentation:
//!
//! * [`polyhedra`] — linear inequality systems, Fourier–Motzkin, scanning,
//!   parametric lexicographic optimization (§4–5 of the paper);
//! * [`ir`] — affine programs, parser, sequential interpreter/oracle;
//! * [`dataflow`] — Last Write Trees (§3);
//! * [`decomp`] — data/computation decompositions (§4.2–4.3);
//! * [`commgen`] — communication sets and the §6 optimizations;
//! * [`codegen`] — SPMD loop nests, memory boxes, pretty printing (§5);
//! * [`machine`] — the simulated iPSC/860 (§7);
//! * [`core`] — the end-to-end compiler pipeline;
//! * [`obs`] — structured tracing, span profiling, and the provenance
//!   explain layer (Chrome trace export, explain reports).
//!
//! ## One-screen tour
//!
//! ```
//! use dmc::core::{compile, run, CompileInput, Options};
//! use dmc::decomp::{CompDecomp, ProcGrid};
//! use dmc::machine::MachineConfig;
//! use std::collections::{BTreeMap, HashMap};
//!
//! // The paper's Figure 2 kernel.
//! let program = dmc::ir::parse(
//!     "param T, N; array X[N + 1];
//!      for t = 0 to T { for i = 3 to N { X[i] = X[i - 3]; } }").unwrap();
//!
//! let mut comps = BTreeMap::new();
//! comps.insert(0, CompDecomp::block_1d(0, "i", 32));
//! let compiled = compile(CompileInput {
//!     program, comps, initial: HashMap::new(), grid: ProcGrid::line(4),
//! }, Options::full()).unwrap();
//!
//! // Values mode: the simulator verifies the communication plan delivers
//! // every value each processor reads.
//! let result = run(&compiled, &[3, 127], &MachineConfig::ipsc860(), true, 100_000).unwrap();
//! assert!(result.stats.messages > 0);
//! ```

pub use dmc_codegen as codegen;
pub use dmc_commgen as commgen;
pub use dmc_core as core;
pub use dmc_dataflow as dataflow;
pub use dmc_decomp as decomp;
pub use dmc_ir as ir;
pub use dmc_machine as machine;
pub use dmc_obs as obs;
pub use dmc_polyhedra as polyhedra;
