//! Further end-to-end kernels exercising paths the paper figures do not:
//! 2-D processor grids, transpose-style reads, and triangular iteration
//! spaces — each verified in values mode against the sequential oracle.

use std::collections::{BTreeMap, HashMap};

use dmc_core::{compile, run, CompileInput, Options};
use dmc_decomp::{CompDecomp, DataDecomp, DimMap, ProcGrid};
use dmc_ir::{Aff, Program};
use dmc_machine::MachineConfig;

fn check(input: CompileInput, vals: &[i128]) -> dmc_machine::SimStats {
    let program = input.program.clone();
    let compiled = compile(input, Options::full()).expect("compiles");
    let r = run(&compiled, vals, &MachineConfig::ipsc860(), true, 5_000_000).expect("simulates");
    let env: HashMap<String, i128> = program
        .params
        .iter()
        .cloned()
        .zip(vals.iter().copied())
        .collect();
    let seq = dmc_ir::interp::run(&program, &env).expect("sequential run");
    let mem = r.memory.as_ref().expect("values mode");
    for (name, store) in seq.iter() {
        let got = mem.array(name).expect("array exists");
        let a = got.as_slice();
        let b = store.as_slice();
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            let same = x == y || (x.is_nan() && y.is_nan()) || (x - y).abs() < 1e-12;
            assert!(same, "array {name} flat {k}: {x} vs {y}");
        }
    }
    r.stats
}

fn two_d_program() -> Program {
    dmc_ir::parse(
        "param N; array A[N + 1][N + 1]; array B[N + 1][N + 1];
         for i = 0 to N {
           for j = 1 to N {
             B[i][j] = A[i][j - 1] + 1.0;
           }
         }",
    )
    .expect("parses")
}

/// A 2-D block decomposition on a 2×2 grid: reads of `A[i][j-1]` cross the
/// column-block boundary in the second grid dimension only.
#[test]
fn two_d_grid_blocked() {
    let program = two_d_program();
    let mut comps = BTreeMap::new();
    comps.insert(
        0,
        CompDecomp::from_maps(
            0,
            vec![
                DimMap::block(Aff::var("i"), 8),
                DimMap::block(Aff::var("j"), 8),
            ],
        ),
    );
    let mut initial = HashMap::new();
    initial.insert(
        "A".to_string(),
        DataDecomp::from_maps(
            "A",
            2,
            vec![
                DimMap::block(Aff::var("a0"), 8),
                DimMap::block(Aff::var("a1"), 8),
            ],
        ),
    );
    let input = CompileInput {
        program,
        comps,
        initial,
        grid: ProcGrid::new(vec![2, 2]),
    };
    let stats = check(input, &[15]);
    // Each row-block boundary moves one word per crossing row: senders are
    // the left column blocks.
    assert!(stats.messages > 0);
    assert!(
        stats.words >= 16,
        "one word per row crossing, got {}",
        stats.words
    );
}

/// Transpose-style reads: `B[i][j] = A[j][i]` with both arrays living as
/// row blocks — a dense many-to-many initial redistribution (Theorem 4).
#[test]
fn transpose_read_redistribution() {
    let program = dmc_ir::parse(
        "param N; array A[N][N]; array B[N][N];
         for i = 0 to N - 1 {
           for j = 0 to N - 1 {
             B[i][j] = A[j][i] * 2.0;
           }
         }",
    )
    .expect("parses");
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", 4));
    let mut initial = HashMap::new();
    initial.insert("A".to_string(), DataDecomp::block_1d("A", 2, 0, 4));
    let input = CompileInput {
        program,
        comps,
        initial,
        grid: ProcGrid::line(3),
    };
    let stats = check(input, &[12]);
    // Every off-diagonal block of A crosses processors exactly once.
    assert!(stats.words > 0);
}

/// A triangular kernel with a carried dependence along the diagonal.
#[test]
fn triangular_forward_substitution() {
    // y[i] = (y[i] - sum_{j<i} L[i][j] * y[j]) via an explicit inner loop;
    // reading y[j] for j < i makes earlier processors feed later ones.
    let program = dmc_ir::parse(
        "param N; array L[N][N]; array Y[N];
         for i = 1 to N - 1 {
           for j = 0 to i - 1 {
             Y[i] = Y[i] - L[i][j] * Y[j];
           }
         }",
    )
    .expect("parses");
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", 4));
    let input = CompileInput {
        program,
        comps,
        initial: HashMap::new(),
        grid: ProcGrid::line(3),
    };
    let stats = check(input, &[12]);
    assert!(stats.messages > 0, "the pipeline must communicate y values");
}

/// Block-cyclic computation decomposition (block 3 over virtual procs,
/// folded onto 2 physical): exercises virtual→physical folding with
/// blocks larger than one.
#[test]
fn block_cyclic_folding() {
    let program = dmc_ir::parse(
        "param N; array X[N + 1];
         for i = 3 to N { X[i] = X[i - 3]; }",
    )
    .expect("parses");
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", 3));
    let input = CompileInput {
        program,
        comps,
        initial: HashMap::new(),
        grid: ProcGrid::line(2), // virtual blocks 0..N/3 fold onto 2 procs
    };
    check(input, &[20]);
}

/// The work-array privatization pattern (§2.2.2): with value-centric
/// analysis, no inter-iteration communication exists for `work` at all.
#[test]
fn privatization_needs_no_communication() {
    let program = dmc_ir::parse(
        "param N, M; array work[M + 1]; array out[N + 1][M + 1];
         for i = 0 to N {
           for j = 0 to M { work[j] = 2.0; }
           for j2 = 0 to M { out[i][j2] = work[j2] + 1.0; }
         }",
    )
    .expect("parses");
    let mut comps = BTreeMap::new();
    // Both inner loops decomposed identically by their j index: the
    // producer and consumer of work[j] are always the same processor.
    comps.insert(0, CompDecomp::block_1d(0, "j", 4));
    comps.insert(1, CompDecomp::block_1d(1, "j2", 4));
    let input = CompileInput {
        program,
        comps,
        initial: HashMap::new(),
        grid: ProcGrid::line(3),
    };
    let stats = check(input, &[6, 10]);
    assert_eq!(
        stats.messages, 0,
        "privatizable work array must induce no communication"
    );
}
