//! Integration tests binding the paper's figures to the public API —
//! the per-experiment index of DESIGN.md (E1–E9).

use std::collections::{BTreeMap, HashMap};

use dmc_core::{compile, message_stats, run, CompileInput, Options};
use dmc_dataflow::{build_lwt, build_lwt_hull, DepLevel};
use dmc_decomp::{owner_computes, CompDecomp, DataDecomp, ProcGrid};
use dmc_machine::MachineConfig;
use dmc_polyhedra::{scan_bounds, Constraint, DimKind, LinExpr, Polyhedron, Space};

const FIG2_SRC: &str = "param T, N; array X[N + 1];
for t = 0 to T { for i = 3 to N { X[i] = X[i - 3]; } }";

const LU_SRC: &str = "param N; array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}";

/// E1 — Figure 3: the LWT of Figure 2's read has exactly the two contexts
/// the paper draws: M1 (⊥, `i <= 5`) and M2 (`[t, i-3]`, level 2).
#[test]
fn fig3_lwt() {
    let p = dmc_ir::parse(FIG2_SRC).unwrap();
    let lwt = build_lwt(&p, 0, 0).unwrap();
    assert_eq!(lwt.leaves.len(), 2);
    assert_eq!(lwt.bottom_leaves().count(), 1);
    let src = lwt.source_leaves().next().unwrap().source.as_ref().unwrap();
    assert_eq!(src.level, DepLevel::Carried(2));
    // M1 covers exactly i_r in 3..=5; M2 the rest.
    for i in 3..=20i128 {
        let producer = lwt.producer_at(&[1, i], &[2, 20]);
        if i <= 5 {
            assert_eq!(producer, None, "i={i} reads live-in X[{}]", i - 3);
        } else {
            assert_eq!(producer, Some((0, vec![1, i - 3])), "i={i}");
        }
    }
}

/// E2 — Figure 5: the communication sets for context M2 under the block-32
/// decomposition; the `p_s > p_r` disjunct is empty, the other carries
/// three boundary elements per (t, receiver).
#[test]
fn fig5_comm_sets() {
    let p = dmc_ir::parse(FIG2_SRC).unwrap();
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::block_1d(0, "i", 32));
    let input = CompileInput {
        program: p,
        comps,
        initial: HashMap::new(),
        grid: ProcGrid::line(4),
    };
    let compiled = compile(input, Options::full()).unwrap();
    assert_eq!(compiled.comm.len(), 1, "only the ps < pr piece is feasible");
    let elems = compiled.comm[0]
        .enumerate(&[0, 127], 10_000)
        .unwrap()
        .unwrap();
    // One outer iteration, receivers p=1..3, three elements each.
    assert_eq!(elems.len(), 9);
    for e in &elems {
        assert_eq!(e.ps[0], e.pr[0] - 1);
        assert_eq!(e.arr[0], e.r_iter[1] - 3);
    }
}

/// E3 — Figure 6: scanning one polyhedron in (i, j) and (j, i) orders
/// enumerates the same set, in the respective lexicographic orders.
#[test]
fn fig6_projection() {
    let space = Space::from_dims([("i", DimKind::Index), ("j", DimKind::Index)]);
    let mut poly = Polyhedron::universe(space);
    let ge = |c: Vec<i128>, k: i128| Constraint::ge(LinExpr::from_coeffs(c, k));
    poly.add(ge(vec![1, 0], -1)); // i >= 1
    poly.add(ge(vec![-1, 0], 6)); // i <= 6
    poly.add(ge(vec![0, 1], -1)); // j >= 1
    poly.add(ge(vec![1, -1], 0)); // j <= i
    poly.add(ge(vec![1, -2], 12)); // 2j <= i + 12
    let ij = scan_bounds(&poly, &[0, 1]).unwrap();
    let ji = scan_bounds(&poly, &[1, 0]).unwrap();
    let a = ij.enumerate(&[0, 0], 1_000).unwrap();
    let b = ji.enumerate(&[0, 0], 1_000).unwrap();
    assert_eq!(a.len(), b.len());
    // (i, j) order is lexicographic in i then j.
    assert!(a
        .windows(2)
        .all(|w| (w[0][0], w[0][1]) < (w[1][0], w[1][1])));
    // (j, i) order is lexicographic in j then i.
    assert!(b
        .windows(2)
        .all(|w| (w[0][1], w[0][0]) < (w[1][1], w[1][0])));
    let mut a2 = a.clone();
    a2.sort();
    let mut b2 = b.clone();
    b2.sort();
    assert_eq!(a2, b2);
}

/// E4 — Figure 7: generated computation and communication code. The
/// structural assertions live in `dmc-codegen`; here we check the
/// round-trip through the public API and the guard behaviour.
#[test]
fn fig7_codegen() {
    let p = dmc_ir::parse(FIG2_SRC).unwrap();
    let stmts = p.statements();
    let comp = CompDecomp::block_1d(0, "i", 32);
    let code = dmc_codegen::computation_code(&p, &stmts[0], &comp).unwrap();
    let text = dmc_codegen::render(&code);
    assert!(text.contains("for t = 0 to T {"), "{text}");
    assert!(text.contains("MAX(") && text.contains("MIN("), "{text}");
}

/// E5 — Figures 8/9: one LWT for the uniformly generated group
/// `X[i], X[i-1], X[i-2], X[i-3]`.
#[test]
fn fig9_group_lwt() {
    let p = dmc_ir::parse(
        "param T, N; array X[N + 1];
         for t = 0 to T { for i = 3 to N { X[i] = f(X[i], X[i - 1], X[i - 2], X[i - 3]); } }",
    )
    .unwrap();
    let lwt = build_lwt_hull(&p, 0, &[0, 1, 2, 3]).unwrap();
    assert!(lwt.read_dims.contains(&"$u0".to_string()));
    // The hull covers all four offsets: u in [-3, 0] around X[i + u].
    assert_eq!(lwt.producer_at(&[2, 8, 0], &[4, 12]), Some((0, vec![1, 8])));
    assert_eq!(
        lwt.producer_at(&[2, 8, -1], &[4, 12]),
        Some((0, vec![2, 7]))
    );
}

/// E6 — Figure 10: aggregation turns 3 one-word messages per (t, receiver)
/// into one 3-word message, with identical pack and unpack orders.
#[test]
fn fig10_aggregation() {
    let p = dmc_ir::parse(FIG2_SRC).unwrap();
    let mk = || {
        let mut comps = BTreeMap::new();
        comps.insert(0, CompDecomp::block_1d(0, "i", 32));
        CompileInput {
            program: p.clone(),
            comps,
            initial: HashMap::new(),
            grid: ProcGrid::line(4),
        }
    };
    let agg = compile(mk(), Options::full()).unwrap();
    let mut no = Options::full();
    no.aggregate = false;
    let unagg = compile(mk(), no).unwrap();
    let (m_agg, _, w_agg) = message_stats(&agg, &[3, 127], 100_000).unwrap();
    let (m_un, _, w_un) = message_stats(&unagg, &[3, 127], 100_000).unwrap();
    assert_eq!(w_agg, w_un, "aggregation moves the same data");
    assert_eq!(m_un, 3 * m_agg, "3 items per aggregated message");
}

/// E7 — Figures 11–13: the full LU pipeline is correct end to end.
#[test]
fn fig13_lu_spmd() {
    let program = dmc_ir::parse(LU_SRC).unwrap();
    let mut comps = BTreeMap::new();
    comps.insert(0, CompDecomp::cyclic_1d(0, "i2"));
    comps.insert(1, CompDecomp::cyclic_1d(1, "i2"));
    let mut initial = HashMap::new();
    initial.insert("X".to_string(), DataDecomp::cyclic_1d("X", 2, 0));
    let input = CompileInput {
        program: program.clone(),
        comps,
        initial,
        grid: ProcGrid::line(4),
    };
    let compiled = compile(input, Options::full()).unwrap();
    let r = run(
        &compiled,
        &[16],
        &MachineConfig::ipsc860(),
        true,
        10_000_000,
    )
    .unwrap();
    let mut env = HashMap::new();
    env.insert("N".to_string(), 16i128);
    let seq = dmc_ir::interp::run(&program, &env).unwrap();
    let a = r.memory.unwrap();
    let got = a.array("X").unwrap().as_slice().to_vec();
    let want = seq.array("X").unwrap().as_slice();
    assert!(got
        .iter()
        .zip(want)
        .all(|(x, y)| x == y || (x.is_nan() && y.is_nan())));
}

/// E8 — Figure 14 (shape only at test scale): LU on more processors is
/// faster, and the speedup at P=8 is substantial for a compute-heavy size.
#[test]
fn fig14_speedup_shape() {
    let mk = |p: i128| {
        let program = dmc_ir::parse(LU_SRC).unwrap();
        let mut comps = BTreeMap::new();
        comps.insert(0, CompDecomp::cyclic_1d(0, "i2"));
        comps.insert(1, CompDecomp::cyclic_1d(1, "i2"));
        let mut initial = HashMap::new();
        initial.insert("X".to_string(), DataDecomp::cyclic_1d("X", 2, 0));
        CompileInput {
            program,
            comps,
            initial,
            grid: ProcGrid::line(p),
        }
    };
    // Slow processor (scaled model) so N=64 behaves like a large problem.
    let mut cfg = MachineConfig::ipsc860();
    cfg.flop_time *= 32.0;
    let mut times = Vec::new();
    for p in [1i128, 2, 4, 8] {
        let compiled = compile(mk(p), Options::full()).unwrap();
        let r = run(&compiled, &[64], &cfg, false, 50_000_000).unwrap();
        times.push(r.stats.time);
    }
    assert!(
        times.windows(2).all(|w| w[1] < w[0]),
        "monotone speedup: {times:?}"
    );
    let s8 = times[0] / times[3];
    assert!(
        s8 > 4.0,
        "speedup at P=8 should be substantial, got {s8:.2}"
    );
}

/// E9 — §2.2 comparisons: on the X/Y example the value-centric plan moves
/// a constant number of words while the location-centric baseline re-fetches
/// every outer iteration.
#[test]
fn sec22_comparisons() {
    let program = dmc_ir::parse(
        "param N; array X[N + 2]; array Y[N + 2];
         for i = 0 to N {
           X[i] = 1.5;
           for j = 1 to N {
             Y[j] = Y[j] + X[j - 1];
           }
         }",
    )
    .unwrap();
    let mk = || {
        let mut comps = BTreeMap::new();
        comps.insert(0, CompDecomp::block_1d(0, "i", 4));
        comps.insert(1, CompDecomp::block_1d(1, "j", 4));
        let mut initial = HashMap::new();
        initial.insert("X".to_string(), DataDecomp::block_1d("X", 1, 0, 4));
        initial.insert("Y".to_string(), DataDecomp::block_1d("Y", 1, 0, 4));
        CompileInput {
            program: program.clone(),
            comps,
            initial,
            grid: ProcGrid::line(4),
        }
    };
    let n = 11i128;
    let vc = compile(mk(), Options::full()).unwrap();
    let lc = compile(mk(), Options::location_centric()).unwrap();
    let (_, _, w_vc) = message_stats(&vc, &[n], 1_000_000).unwrap();
    let (_, _, w_lc) = message_stats(&lc, &[n], 1_000_000).unwrap();
    // Value-centric: each crossing value moves O(1) times; location-centric
    // re-fetches it every outer iteration (O(N)).
    assert!(w_vc * 2 <= w_lc, "vc {w_vc} vs lc {w_lc}");

    // §2.2.1: the owner-computes rule rejects replicated written data.
    let stmts = program.statements();
    let overlapped = DataDecomp::from_maps(
        "X",
        1,
        vec![dmc_decomp::DimMap::block(dmc_ir::Aff::var("a0"), 4).with_overlap(1, 1)],
    );
    assert!(owner_computes(&overlapped, &stmts[0]).is_err());
}

/// §2.2.3 — the sparse access pattern A[1000 i + j]: exactness means the
/// communication volume equals exactly the touched elements (no
/// factor-of-20 regular-section blowup).
#[test]
fn sec223_no_regular_section_blowup() {
    let program = dmc_ir::parse(
        "param N; array A[1000 * N + 101]; array B[N + 1][101];
         for i0 = 1 to N { for j0 = i0 to 100 { A[1000 * i0 + j0] = 1.0; } }
         for i = 1 to N { for j = i to 100 { B[i][j] = A[1000 * i + j]; } }",
    )
    .unwrap();
    let mut comps = BTreeMap::new();
    // Writers by i0 blocks; readers by j blocks — forces communication.
    comps.insert(0, CompDecomp::block_1d(0, "i0", 2));
    comps.insert(1, CompDecomp::block_1d(1, "j", 32));
    let input = CompileInput {
        program,
        comps,
        initial: HashMap::new(),
        grid: ProcGrid::line(4),
    };
    let compiled = compile(input, Options::full()).unwrap();
    let (_, _, words) = message_stats(&compiled, &[4], 1_000_000).unwrap();
    // Touched elements that cross processors: at most the number of written
    // elements (sum over i0 of 101 - i0), never the 1000-wide row span.
    let touched: u64 = (1..=4u64).map(|i| 101 - i).sum();
    assert!(
        words <= touched,
        "words {words} must not blow up past {touched}"
    );
    assert!(words > 0);
}
